package core

import (
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/transitive"

	"repro/internal/num"
)

// MultiView implements the paper's named future-work extension: "this
// mechanism can be extended to handle multiple views of the same
// resources... for example, the disk bandwidth resource can be viewed as
// two kinds of resources: read bandwidth and write bandwidth" (end of
// Section 2.2).
//
// Each view has its own agreement matrix over the same principals, but
// all views draw from one shared physical capacity: taking read bandwidth
// from a disk leaves less for writes. A request spanning several views is
// planned by a single LP that couples the views through the physical
// capacity constraint Σ_views take_i ≤ V_i and minimizes the worst
// capacity perturbation across every (principal, view) pair.
type MultiView struct {
	n     int
	views []string
	// k[view] are the capped transitive coefficients for that view.
	k map[string][][]float64
	// method selects the simplex implementation.
	method lp.Method
}

// NewMultiView builds a multi-view planner. Every view's matrix must
// cover the same n principals.
func NewMultiView(views map[string][][]float64, cfg Config) (*MultiView, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("core: NewMultiView: no views")
	}
	mv := &MultiView{k: map[string][][]float64{}, method: cfg.LPMethod}
	for name := range views {
		mv.views = append(mv.views, name)
	}
	sort.Strings(mv.views)
	mv.n = len(views[mv.views[0]])
	for _, name := range mv.views {
		s := views[name]
		if len(s) != mv.n {
			return nil, fmt.Errorf("core: NewMultiView: view %q has %d principals, want %d", name, len(s), mv.n)
		}
		if err := transitive.Validate(s); err != nil {
			return nil, fmt.Errorf("core: NewMultiView: view %q: %w", name, err)
		}
		level := cfg.Level
		if level <= 0 {
			level = mv.n - 1
		}
		var t [][]float64
		if cfg.Approx {
			t = transitive.Approx(s, level)
		} else {
			const exactBudget = 50_000_000
			if !transitive.WithinBudget(s, level, exactBudget) {
				return nil, fmt.Errorf("core: NewMultiView: view %q needs Config.Approx (graph too dense for exact closure)", name)
			}
			t = transitive.Exact(s, level)
		}
		mv.k[name] = transitive.Cap(t)
	}
	return mv, nil
}

// Views returns the view names, sorted.
func (mv *MultiView) Views() []string { return append([]string(nil), mv.views...) }

// Capacities returns C_i per view at the shared physical availability v.
// Note the sum across views can exceed the physical total — capacity is
// an entitlement per view; the Plan constraint keeps actual consumption
// physical.
func (mv *MultiView) Capacities(v []float64) map[string][]float64 {
	out := make(map[string][]float64, len(mv.views))
	for _, name := range mv.views {
		out[name] = transitive.Capacities(v, mv.k[name], nil)
	}
	return out
}

// Plan allocates request[view] units of each view for the requester from
// the shared physical capacities v. A single LP couples all views:
//
//	Σ_i take[v][i]           = request[v]      per view
//	take[v][i]              <= U^v_i(requester) per view and source
//	Σ_v take[v][i]          <= v[i]             physical capacity
//	Σ_k K^v[k][j]·Σ_w take[w][k] <= θ           perturbation, each (j, v)
//
// minimizing θ. Returns one Allocation per view; the per-view takes sum
// to the request and jointly respect the physical pools.
func (mv *MultiView) Plan(v []float64, requester int, request map[string]float64) (map[string]*Allocation, error) {
	if len(v) != mv.n {
		panic(fmt.Sprintf("core: MultiView.Plan: %d capacities for %d principals", len(v), mv.n))
	}
	if requester < 0 || requester >= mv.n {
		panic(fmt.Sprintf("core: MultiView.Plan: requester %d out of range", requester))
	}
	asked := make([]string, 0, len(request))
	var totalAsk float64
	for name, amt := range request {
		if _, ok := mv.k[name]; !ok {
			return nil, fmt.Errorf("core: MultiView.Plan: unknown view %q", name)
		}
		if amt < 0 {
			return nil, fmt.Errorf("core: MultiView.Plan: negative request %g for view %q", amt, name)
		}
		asked = append(asked, name)
		totalAsk += amt
	}
	sort.Strings(asked)

	// Feasibility pre-checks with precise errors: per-view entitlement
	// and the joint physical pool.
	for _, name := range asked {
		caps := transitive.Capacities(v, mv.k[name], nil)
		if caps[requester] < request[name]-1e-9 {
			return nil, fmt.Errorf("%w: view %q capacity %g, requested %g",
				ErrInsufficient, name, caps[requester], request[name])
		}
	}

	m := lp.NewModel(lp.Minimize)
	take := map[string][]lp.VarID{}
	for _, name := range asked {
		vars := make([]lp.VarID, mv.n)
		for i := 0; i < mv.n; i++ {
			hi := v[i]
			if i != requester {
				u := v[i] * mv.k[name][i][requester]
				if u < hi {
					hi = u
				}
			}
			vars[i] = m.AddVar(fmt.Sprintf("take_%s_%d", name, i), 0, hi, 0)
		}
		take[name] = vars
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)

	for _, name := range asked {
		terms := make([]lp.Term, mv.n)
		for i := 0; i < mv.n; i++ {
			terms[i] = lp.Term{Var: take[name][i], Coeff: 1}
		}
		m.AddConstraint("consume_"+name, terms, lp.EQ, request[name])
	}
	// Shared physical pools.
	for i := 0; i < mv.n; i++ {
		terms := make([]lp.Term, 0, len(asked))
		for _, name := range asked {
			terms = append(terms, lp.Term{Var: take[name][i], Coeff: 1})
		}
		m.AddConstraint(fmt.Sprintf("physical_%d", i), terms, lp.LE, v[i])
	}
	// Perturbation across every (principal, view): the capacity drop of
	// principal j in view w is Σ_k K^w[k][j] · (total physical take at k),
	// with the self coefficient 1.
	for _, w := range mv.views {
		for j := 0; j < mv.n; j++ {
			if j == requester {
				continue
			}
			terms := []lp.Term{{Var: theta, Coeff: -1}}
			for k := 0; k < mv.n; k++ {
				coeff := mv.k[w][k][j]
				if k == j {
					coeff = 1
				}
				if num.IsZero(coeff) {
					continue
				}
				for _, name := range asked {
					terms = append(terms, lp.Term{Var: take[name][k], Coeff: coeff})
				}
			}
			m.AddConstraint(fmt.Sprintf("perturb_%s_%d", w, j), terms, lp.LE, 0)
		}
	}

	sol, err := m.SolveWith(mv.method)
	if err != nil {
		return nil, fmt.Errorf("core: multi-view LP failed: %w", err)
	}
	out := make(map[string]*Allocation, len(asked))
	for _, name := range asked {
		alloc := &Allocation{Take: make([]float64, mv.n), NewV: make([]float64, mv.n), Theta: sol.Objective}
		for i := 0; i < mv.n; i++ {
			x := sol.Value(take[name][i])
			if x < 1e-12 {
				x = 0
			}
			alloc.Take[i] = x
		}
		out[name] = alloc
	}
	// NewV reflects the joint physical draw.
	for i := 0; i < mv.n; i++ {
		var drawn float64
		for _, name := range asked {
			drawn += out[name].Take[i]
		}
		left := v[i] - drawn
		if left < 0 {
			left = 0
		}
		for _, name := range asked {
			out[name].NewV[i] = left
		}
	}
	return out, nil
}
