package core

import "fmt"

// BatchRequest is one allocation request inside a PlanBatch call.
type BatchRequest struct {
	Requester int
	Amount    float64
}

// BatchResult pairs one batch request with its outcome. Exactly one of
// Alloc and Err is set.
type BatchResult struct {
	Alloc *Allocation
	Err   error
}

// PlanBatch plans a sequence of requests against one availability
// vector, committing each successful allocation before planning the
// next with the GRM's commit rule (avail[i] -= Take[i], clamped at 0).
// The results are bit-identical to calling Plan once per request with
// that rule applied between calls — the point is not a different
// schedule but a cheaper one: the whole batch shares one pooled
// workspace and two bulk-allocated backing arrays instead of paying
// Plan's per-call allocations, and the GRM's batcher holds its state
// lock for one commit instead of one per request.
//
// A failed request (insufficient capacity, infeasible repair, negative
// amount) consumes nothing and does not stop the batch; its BatchResult
// carries the error and planning continues with the availability
// unchanged, exactly as a sequence of independent Plan calls would.
func (al *Allocator) PlanBatch(v []float64, reqs []BatchRequest) []BatchResult {
	al.checkV(v)
	n := al.n
	for _, req := range reqs {
		if req.Requester < 0 || req.Requester >= n {
			panic(fmt.Sprintf("core: requester %d out of range [0,%d)", req.Requester, n))
		}
	}
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	ws := al.pool.Get().(*planWS)
	defer al.pool.Put(ws)

	// One backing array per field for the whole batch: 3 allocations
	// regardless of batch size, against 3 per request in Plan.
	takeBuf := make([]float64, 2*len(reqs)*n)
	newVBuf := takeBuf[len(reqs)*n:]
	takeBuf = takeBuf[:len(reqs)*n:len(reqs)*n]
	allocs := make([]Allocation, len(reqs))

	cur := ws.chain
	copy(cur, v)
	for r, req := range reqs {
		out := &allocs[r]
		out.Take = takeBuf[r*n : (r+1)*n : (r+1)*n]
		out.NewV = newVBuf[r*n : (r+1)*n : (r+1)*n]
		if err := al.planInto(out, cur, req.Requester, req.Amount, ws); err != nil {
			results[r].Err = err
			continue
		}
		results[r].Alloc = out
		for i, take := range out.Take {
			cur[i] -= take
			if cur[i] < 0 {
				cur[i] = 0
			}
		}
	}
	return results
}
