package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/agreement"
)

// The ComponentLP formulation pins every principal outside the
// requester's agreement column and folds its terms into the right-hand
// sides, so the optimum — the value and, away from degenerate ties, the
// vertex — must match the full substituted LP. These tests pin that
// equivalence on the block scenarios the sparse benches use, across
// requesters, amounts, and incremental mutations.

// sparseBlockScenario is sparse1000Scenario at an arbitrary size: chains
// of relative agreements in blocks of 8 with one absolute back-edge.
func sparseBlockScenario(n int, seed int64) (s, a *agreement.SparseMatrix, v []float64) {
	const block = 8
	rng := rand.New(rand.NewSource(seed))
	sb := agreement.NewSparseBuilder(n)
	ab := agreement.NewSparseBuilder(n)
	for start := 0; start < n; start += block {
		for j := start; j+1 < start+block && j+1 < n; j++ {
			sb.Add(j, j+1, 0.1+rng.Float64()*0.3)
		}
		end := start + block
		if end > n {
			end = n
		}
		if end-start >= 2 {
			ab.Add(end-1, start, 1+rng.Float64()*3)
		}
	}
	v = make([]float64, n)
	for i := range v {
		v[i] = 50 + rng.Float64()*50
	}
	return sb.Build(), ab.Build(), v
}

// comparePlans runs the same request through both allocators and checks
// the outcomes agree: same feasibility, same objective, same takes.
func comparePlans(t *testing.T, full, comp *Allocator, v []float64, requester int, amount float64) {
	t.Helper()
	pf, errF := full.Plan(v, requester, amount)
	pc, errC := comp.Plan(v, requester, amount)
	if (errF == nil) != (errC == nil) {
		t.Fatalf("req %d amount %g: full err %v, component err %v", requester, amount, errF, errC)
	}
	if errF != nil {
		// Both refused; the classification must agree too (insufficiency
		// vs. an infeasible LP under KeepRequesterConstraint).
		if errors.Is(errF, ErrInsufficient) != errors.Is(errC, ErrInsufficient) {
			t.Fatalf("req %d amount %g: refusal classes differ: %v / %v", requester, amount, errF, errC)
		}
		return
	}
	if math.Abs(pf.Theta-pc.Theta) > 1e-6 {
		t.Fatalf("req %d amount %g: theta %g (full) vs %g (component)", requester, amount, pf.Theta, pc.Theta)
	}
	var sum float64
	for i := range pc.Take {
		if math.Abs(pf.Take[i]-pc.Take[i]) > 1e-6 {
			t.Fatalf("req %d amount %g: take[%d] %g (full) vs %g (component)", requester, amount, i, pf.Take[i], pc.Take[i])
		}
		if math.Abs(pf.NewV[i]-pc.NewV[i]) > 1e-6 {
			t.Fatalf("req %d amount %g: newV[%d] %g (full) vs %g (component)", requester, amount, i, pf.NewV[i], pc.NewV[i])
		}
		if pc.Take[i] < -1e-9 {
			t.Fatalf("req %d amount %g: negative take[%d] = %g", requester, amount, i, pc.Take[i])
		}
		sum += pc.Take[i]
	}
	if math.Abs(sum-amount) > 1e-6 {
		t.Fatalf("req %d amount %g: component takes sum to %g", requester, amount, sum)
	}
}

func TestComponentLPMatchesFull(t *testing.T) {
	s, a, v := sparseBlockScenario(200, 23)
	full, err := NewAllocatorSparse(s, a, Config{Level: 5})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewAllocatorSparse(s, a, Config{Level: 5, ComponentLP: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	requesters := []int{0, 3, 7, 8, 15, 96, 103, 192, 199}
	for i := 0; i < 8; i++ {
		requesters = append(requesters, rng.Intn(200))
	}
	for _, r := range requesters {
		for _, amount := range []float64{1, v[r] * 0.5, v[r], v[r] * 1.4, v[r] * 50} {
			comparePlans(t, full, comp, v, r, amount)
		}
	}
}

// TestComponentLPKeepRequesterConstraint covers the eq.-6-on-requester
// variant: the drop row stays in the component model and must bind the
// same way it does in the full LP.
func TestComponentLPKeepRequesterConstraint(t *testing.T) {
	s, a, v := sparseBlockScenario(64, 5)
	full, err := NewAllocatorSparse(s, a, Config{Level: 5, KeepRequesterConstraint: true})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewAllocatorSparse(s, a, Config{Level: 5, KeepRequesterConstraint: true, ComponentLP: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 7, 8, 31, 63} {
		for _, amount := range []float64{1, v[r] * 0.8, v[r] * 1.3} {
			comparePlans(t, full, comp, v, r, amount)
		}
	}
}

// TestComponentLPDenseScenario drives the dense all-to-all bench shape,
// where every principal is in every component: the component model
// degenerates to the full one and must still agree.
func TestComponentLPDenseScenario(t *testing.T) {
	s, v := benchScenario(10)
	full, err := NewAllocator(s, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewAllocator(s, nil, Config{ComponentLP: true})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		comparePlans(t, full, comp, v, r, 30)
	}
}

// TestComponentLPMutations pins the skeleton-invalidation discipline:
// after relative value moves, relative sparsity flips, and absolute
// flips — interleaved with plans that populate the caches — the
// component allocator must keep matching a freshly built full one.
func TestComponentLPMutations(t *testing.T) {
	s, a, v := sparseBlockScenario(48, 11)
	comp, err := NewAllocatorSparse(s, a, Config{Level: 5, ComponentLP: true})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		full, err := NewAllocator(comp.Shares(), comp.denseA(), Config{Level: 5})
		if err != nil {
			t.Fatalf("%s: rebuild: %v", stage, err)
		}
		for _, r := range []int{0, 1, 7, 8, 40, 47} {
			comparePlans(t, full, comp, v, r, v[r]*0.9)
		}
	}
	check("initial")

	// Relative value move inside an existing edge.
	comp, err = comp.SetShare(0, 1, comp.Share(0, 1), 0.35)
	if err != nil {
		t.Fatal(err)
	}
	check("share value move")

	// Relative sparsity flip: a brand-new cross-block edge.
	comp, err = comp.SetShare(8, 40, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	check("share flip on")

	// Absolute sparsity flip on: requester 1 gains a new source column
	// entry, which must rebuild its component skeleton.
	comp, err = comp.SetAgreement(40, 1, 0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	check("agreement flip on")

	// Absolute value-only move: skeletons survive, RHS refolds per solve.
	comp, err = comp.SetAgreement(40, 1, 2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("agreement value move")

	// Absolute flip off again.
	comp, err = comp.SetAgreement(40, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("agreement flip off")
}
