package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/agreement"
	"repro/internal/lp"
	"repro/internal/transitive"

	"repro/internal/num"
)

// ErrInsufficient is wrapped by Plan when the requester's capacity C_A is
// smaller than the requested amount.
var ErrInsufficient = errors.New("core: insufficient capacity for request")

// ErrInfeasible is wrapped by Plan when the LP solution cannot be repaired
// into an exact allocation: round-off cleanup left a residual with every
// contributing source already at its agreement cap, so delivering the
// requested amount would violate an agreement.
var ErrInfeasible = errors.New("core: allocation infeasible within agreement caps")

// Planner is the common interface of the LP allocator and the baseline
// schemes: decide where to take `amount` units for `requester` given the
// current per-principal capacities v.
type Planner interface {
	// Plan returns the allocation for a request, or ErrInsufficient.
	Plan(v []float64, requester int, amount float64) (*Allocation, error)
	// Capacities returns C_i for every principal at availability v.
	Capacities(v []float64) []float64
}

// Allocation is the outcome of planning one request.
type Allocation struct {
	// Take[i] is the amount drawn from principal i's resources
	// (V_i − V'_i ≥ 0); it sums to the requested amount.
	Take []float64
	// NewV[i] is the post-allocation availability V'_i.
	NewV []float64
	// Theta is the realized max capacity perturbation across the
	// non-requesting principals (the LP objective; recomputed exactly for
	// baseline planners too).
	Theta float64
}

// Config tunes the LP allocator.
type Config struct {
	// Level is the transitivity level m: 1 enforces only direct
	// agreements, n−1 (or 0, meaning "full") the complete closure.
	Level int
	// Approx switches the flow coefficients to the matrix-power
	// approximation (walks instead of simple paths). Default exact.
	Approx bool
	// Faithful keeps the paper's full n²+n+1-variable LP instead of the
	// substituted n+1-variable formulation. Results are identical; this
	// exists for validation and the ablation bench.
	Faithful bool
	// KeepRequesterConstraint applies eq. 6 to the requester as well,
	// exactly as printed in the paper. See the package comment for why
	// that makes the optimum non-discriminating; off by default.
	KeepRequesterConstraint bool
	// LPMethod selects the simplex implementation (lp.Tableau by
	// default; lp.Revised pays off on large sparse agreement graphs).
	LPMethod lp.Method
	// WarmStart reuses each requester's final simplex basis across Plan
	// calls (lp.ResolveFrom): when only the availability vector moved,
	// revalidating the old basis replaces the full pivot sequence. Warm
	// answers agree with cold ones within num.SolveTol, not bit-for-bit,
	// so this is off by default — deployments that replay logs for
	// byte-identical state must leave it off. Only effective with the
	// tableau method (lp.Tableau); other methods always solve cold.
	WarmStart bool
	// ComponentLP restricts each plan skeleton to the requester's
	// agreement component: only the V'_i a plan can actually move — the
	// requester and its sparse source column — become LP variables, and
	// only the perturb rows one of those sources feeds stay in the model.
	// Every other V'_k is pinned to v_k by its bounds in the full
	// formulation (its U toward the requester is exactly zero), so its
	// terms fold into the right-hand sides at solve time: the feasible
	// set and the optimum value are unchanged, but the tableau shrinks
	// from O(n²) cells to the agreement neighborhood. The pivot sequence
	// differs from the full model's, so on degenerate ties the realized
	// take vector may be a different (equally optimal) vertex — off by
	// default; the sharded GRM tree turns it on to make allocation cost
	// scale with agreement density instead of population. Ignored by the
	// Faithful formulation.
	ComponentLP bool
}

// fullLevel is the Level sentinel requesting full transitivity: any
// value >= n-1 is clamped per current matrix size, so a closure built
// with fullLevel keeps meaning "the complete closure" as it grows.
const fullLevel = 1 << 30

// exactBudget caps the chain-enumeration steps of exact closures. Exact
// enumeration is exponential on dense graphs; refuse plainly instead of
// hanging (a dense 20-principal graph has ~10^17 cycle-free chains). The
// budget admits the paper's complete 10-principal graph at full closure
// (~10M steps, ~100 ms) but rejects dense graphs of 11+ principals. The
// same budget gates the incremental UpdateEdge path via the closure
// handle, so a mutation that densifies the graph past the budget is
// refused exactly like a from-scratch build would be.
const exactBudget = 50_000_000

// Allocator enforces sharing agreements by linear programming. Its
// agreement state is immutable after construction and it is safe for
// concurrent use: the lazily built LP skeletons and the pooled plan
// workspaces are internally synchronized.
type Allocator struct {
	n int
	// aCols/aVals hold the absolute agreement matrix A in row-sparse form
	// (ascending columns, values aligned); hasA records whether an A was
	// supplied at all — an explicitly passed all-zero matrix still counts,
	// preserving the historical `a != nil` behavior (e.g. the Faithful
	// refusal). The relative matrix S lives inside clo's CSR rows; neither
	// dense n×n array is materialized.
	aCols [][]int32
	aVals [][]float64
	hasA  bool
	k     [][]float64 // capped flow coefficients K^(level)
	cfg   Config
	// conn[i] is a connectivity weight used for deterministic
	// tie-breaking: how much of i's capacity other principals can reach.
	conn []float64
	// colIdx[i] lists the sources k≠i with a nonzero flow into i
	// (K_ki ≠ 0 or A_ki ≠ 0), in ascending order. Capacity sums walk
	// this index instead of scanning the dense column; the skipped terms
	// are exactly zero, so the result is bit-identical. colK/colA carry
	// the matching K_ki and A_ki values so the hot path never needs a
	// dense random access.
	colIdx [][]int32
	colK   [][]float64
	colA   [][]float64
	// skel[r] caches the LP skeleton for requester r: the constraint
	// coefficients depend only on K and the sparsity pattern of A, so per
	// Plan call only the variable bounds and right-hand sides are rebound.
	skel []*planSkeleton
	// clo maintains the transitive closure incrementally; SetShare derives
	// allocators through its delta path instead of re-enumerating chains.
	clo *transitive.Closure
	// warm[r] holds requester r's saved simplex basis for WarmStart plans.
	warm []*warmSlot
	pool sync.Pool // *planWS
}

// warmSlot serializes basis reuse for one requester: the lp.Workspace
// holding the saved final basis, plus a mutex so a concurrent Plan for
// the same requester falls back to a cold solve instead of contending.
type warmSlot struct {
	mu sync.Mutex
	ws lp.Workspace
}

// planSkeleton is the reusable part of requester r's substituted LP:
// the model structure plus the rows whose right-hand sides change per
// solve. Built once per requester on first use.
type planSkeleton struct {
	once       sync.Once
	model      *lp.Model
	consumeRow int
	perturbRow []int // row of perturb_i, -1 where the row does not exist
	dropRow    int   // requester_drop row, -1 unless KeepRequesterConstraint
	// capFlowRows lists the cap_flow_k_i rows whose right-hand side is
	// A[k][i]: rebound per solve so the skeleton depends only on A's
	// sparsity pattern, never its values — SetAgreement value changes
	// share every skeleton.
	capFlowRows []capFlowRef
	// Component restriction (cfg.ComponentLP). vars lists the live
	// principals in ascending order — variable x of the model is
	// V'_vars[x]; varOf is the inverse (-1 for principals folded into
	// the right-hand sides); compRows lists the kept perturb rows. nil
	// vars means the skeleton is the full formulation.
	vars     []int32
	varOf    []int32
	compRows []compRow
}

// compRow locates one kept perturb row of a component skeleton.
type compRow struct {
	row int
	i   int32
}

// capFlowRef locates one cap_flow_k_i row for per-solve RHS rebinding.
type capFlowRef struct {
	row  int
	k, i int32
}

// planWS is the per-Plan scratch recycled through Allocator.pool: the
// capacity/source-cap vectors, the per-requester rebindable model clones,
// and the LP solver workspace.
type planWS struct {
	caps   []float64 // C_i before the allocation
	uCol   []float64 // U_{i→requester} (v[i] for the requester itself)
	after  []float64 // C_i after the candidate allocation
	chain  []float64 // PlanBatch's running availability between requests
	clones []*lp.Model
	lpws   lp.Workspace
}

// NewAllocator builds an allocator from a relative agreement matrix S and
// an optional absolute agreement matrix A (nil for none). The transitive
// flow coefficients are computed once here — they depend only on S and the
// level, not on the fluctuating capacities. The dense inputs are converted
// to the allocator's row-sparse form; NewAllocatorSparse skips the dense
// detour entirely.
func NewAllocator(s [][]float64, a [][]float64, cfg Config) (*Allocator, error) {
	if err := transitive.Validate(s); err != nil {
		return nil, err
	}
	n := len(s)
	aCols := make([][]int32, n)
	aVals := make([][]float64, n)
	if a != nil {
		if len(a) != n {
			return nil, fmt.Errorf("core: A is %d×?, S is %d×%d", len(a), n, n)
		}
		for i, row := range a {
			if len(row) != n {
				return nil, fmt.Errorf("core: A row %d has %d entries, want %d", i, len(row), n)
			}
			for j, x := range row {
				if x < 0 {
					return nil, fmt.Errorf("core: A[%d][%d] = %g, must be non-negative", i, j, x)
				}
				if !num.IsZero(x) {
					aCols[i] = append(aCols[i], int32(j))
					aVals[i] = append(aVals[i], x)
				}
			}
		}
	}
	level := effectiveLevel(cfg)
	if !cfg.Approx && !transitive.WithinBudget(s, level, exactBudget) {
		return nil, fmt.Errorf("core: exact transitive closure would exceed %d steps for this agreement graph; set Config.Approx or lower Config.Level", exactBudget)
	}
	clo := transitive.NewClosure(s, level, cfg.Approx).WithBudget(exactBudget)
	return finishAllocator(n, clo, aCols, aVals, a != nil, cfg), nil
}

// NewAllocatorSparse builds an allocator straight from CSR agreement
// matrices (the agreement.SparseMatrices form) without materializing any
// dense n×n array: S's rows seed the incremental closure directly and A
// is stored row-sparse. a may be nil. The result is bit-identical to
// NewAllocator over the dense exports — the sparse kernels read the same
// floats in the same order.
func NewAllocatorSparse(s *agreement.SparseMatrix, a *agreement.SparseMatrix, cfg Config) (*Allocator, error) {
	n := s.N()
	sCols := make([][]int32, n)
	sVals := make([][]float64, n)
	for i := 0; i < n; i++ {
		sCols[i], sVals[i] = s.Row(i)
		for k, j := range sCols[i] {
			if int(j) == i {
				return nil, fmt.Errorf("core: S[%d][%d] = %g, diagonal must be zero", i, i, sVals[i][k])
			}
			if sVals[i][k] < 0 {
				return nil, fmt.Errorf("core: S[%d][%d] = %g, entries must be non-negative", i, j, sVals[i][k])
			}
		}
	}
	aCols := make([][]int32, n)
	aVals := make([][]float64, n)
	if a != nil {
		if a.N() != n {
			return nil, fmt.Errorf("core: A is %d×%d, S is %d×%d", a.N(), a.N(), n, n)
		}
		for i := 0; i < n; i++ {
			aCols[i], aVals[i] = a.Row(i)
			for k, j := range aCols[i] {
				if aVals[i][k] < 0 {
					return nil, fmt.Errorf("core: A[%d][%d] = %g, must be non-negative", i, j, aVals[i][k])
				}
			}
		}
	}
	level := effectiveLevel(cfg)
	if !cfg.Approx && !transitive.WithinBudgetCSR(n, sCols, sVals, level, exactBudget) {
		return nil, fmt.Errorf("core: exact transitive closure would exceed %d steps for this agreement graph; set Config.Approx or lower Config.Level", exactBudget)
	}
	clo := transitive.NewClosureCSR(n, sCols, sVals, level, cfg.Approx).WithBudget(exactBudget)
	return finishAllocator(n, clo, aCols, aVals, a != nil, cfg), nil
}

// effectiveLevel resolves Config.Level: non-positive requests the
// complete closure via the fullLevel sentinel (clamping is redone per
// current n as the allocator grows).
func effectiveLevel(cfg Config) int {
	if cfg.Level <= 0 {
		return fullLevel
	}
	return cfg.Level
}

// finishAllocator builds the derived caches shared by both constructors.
func finishAllocator(n int, clo *transitive.Closure, aCols [][]int32, aVals [][]float64, hasA bool, cfg Config) *Allocator {
	al := &Allocator{n: n, aCols: aCols, aVals: aVals, hasA: hasA, cfg: cfg, conn: make([]float64, n)}
	al.clo = clo
	k := transitive.Cap(al.clo.T())
	al.k = k
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				al.conn[i] += k[i][j]
			}
		}
	}
	al.colIdx = make([][]int32, n)
	al.colK = make([][]float64, n)
	al.colA = make([][]float64, n)
	for i := 0; i < n; i++ {
		al.colIdx[i], al.colK[i], al.colA[i] = al.colIdxFor(i)
	}
	al.skel = make([]*planSkeleton, n)
	for i := range al.skel {
		al.skel[i] = &planSkeleton{}
	}
	al.warm = make([]*warmSlot, n)
	for i := range al.warm {
		al.warm[i] = &warmSlot{}
	}
	al.initPool()
	return al
}

// aAt returns A[k][i] — a binary search over row k's sparse columns, 0
// when unstored.
func (al *Allocator) aAt(k, i int) float64 {
	cols := al.aCols[k]
	x := sort.Search(len(cols), func(x int) bool { return cols[x] >= int32(i) })
	if x < len(cols) && cols[x] == int32(i) {
		return al.aVals[k][x]
	}
	return 0
}

// denseA materializes A as dense rows, nil when no absolute matrix was
// ever supplied — the shape transitive.Capacities and the baseline
// planners expect.
func (al *Allocator) denseA() [][]float64 {
	if !al.hasA {
		return nil
	}
	out := make([][]float64, al.n)
	for i := range out {
		out[i] = make([]float64, al.n)
		for idx, j := range al.aCols[i] {
			out[i][j] = al.aVals[i][idx]
		}
	}
	return out
}

// colIdxFor computes the sparse column index for principal i — the
// sources kk ≠ i with a nonzero flow into i, ascending — plus the
// aligned K_ki and A_ki value lists.
func (al *Allocator) colIdxFor(i int) ([]int32, []float64, []float64) {
	var out []int32
	var ks, as []float64
	for kk := 0; kk < al.n; kk++ {
		if kk == i {
			continue
		}
		av := al.aAt(kk, i)
		if !num.IsZero(al.k[kk][i]) || !num.IsZero(av) {
			out = append(out, int32(kk))
			ks = append(ks, al.k[kk][i])
			as = append(as, av)
		}
	}
	return out, ks, as
}

// initPool (re)binds the plan-workspace pool; every Allocator — built or
// derived — gets its own pool because sync.Pool must not be copied.
func (al *Allocator) initPool() {
	n := al.n
	al.pool.New = func() any {
		return &planWS{
			caps:   make([]float64, n),
			uCol:   make([]float64, n),
			after:  make([]float64, n),
			chain:  make([]float64, n),
			clones: make([]*lp.Model, n),
		}
	}
}

// N returns the number of principals.
func (al *Allocator) N() int { return al.n }

// FlowCoefficients returns the capped transitive coefficients K in use
// (row i: the fraction of i's capacity reachable by each principal).
func (al *Allocator) FlowCoefficients() [][]float64 {
	out := make([][]float64, al.n)
	for i := range out {
		out[i] = append([]float64(nil), al.k[i]...)
	}
	return out
}

// Capacities returns C_i = V_i + Σ_k U_ki for the current availability.
func (al *Allocator) Capacities(v []float64) []float64 {
	al.checkV(v)
	out := make([]float64, al.n)
	al.capsInto(out, v)
	return out
}

// sourceCap returns U_iA: how much of principal i's current availability
// the requester may draw.
func (al *Allocator) sourceCap(v []float64, i, requester int) float64 {
	if i == requester {
		return v[i]
	}
	return al.uFlow(v, i, requester)
}

// uFlow returns U_ki = min(V_k·K_ki + A_ki, V_k) for k ≠ i, in the exact
// operation order of transitive.Capacities.
func (al *Allocator) uFlow(v []float64, k, i int) float64 {
	u := v[k] * al.k[k][i]
	if al.hasA {
		u += al.aAt(k, i)
	}
	if u > v[k] {
		u = v[k]
	}
	return u
}

// capsInto computes C_i = V_i + Σ_{k≠i} U_ki into dst, walking the
// precomputed sparse column index with its aligned K/A value lists.
// Sources skipped by the index have K_ki = 0 and A_ki = 0, so their U_ki
// is exactly zero and the sum is bit-identical to the dense
// transitive.Capacities scan.
func (al *Allocator) capsInto(dst, v []float64) {
	for i := 0; i < al.n; i++ {
		c := v[i]
		idx, ks, as := al.colIdx[i], al.colK[i], al.colA[i]
		for x, k := range idx {
			u := v[k] * ks[x]
			if al.hasA {
				u += as[x]
			}
			if u > v[k] {
				u = v[k]
			}
			c += u
		}
		dst[i] = c
	}
}

// Plan chooses the allocation minimizing the maximum capacity perturbation
// θ across the other principals (the paper's global metric), subject to
// the agreement-derived per-source caps. It returns ErrInsufficient
// (wrapped, with the shortfall) if C_requester < amount.
func (al *Allocator) Plan(v []float64, requester int, amount float64) (*Allocation, error) {
	al.checkV(v)
	if requester < 0 || requester >= al.n {
		panic(fmt.Sprintf("core: requester %d out of range [0,%d)", requester, al.n))
	}
	ws := al.pool.Get().(*planWS)
	defer al.pool.Put(ws)
	out := &Allocation{Take: make([]float64, al.n), NewV: make([]float64, al.n)}
	if err := al.planInto(out, v, requester, amount, ws); err != nil {
		return nil, err
	}
	return out, nil
}

// planInto plans one request into out (Take and NewV pre-sized to n).
// Factored out of Plan so PlanBatch can solve many requests against one
// workspace and bulk-allocated result arrays; the computation is
// bit-identical to Plan's.
func (al *Allocator) planInto(out *Allocation, v []float64, requester int, amount float64, ws *planWS) error {
	if amount < 0 {
		return fmt.Errorf("core: negative request %g", amount)
	}
	al.capsInto(ws.caps, v)
	if ws.caps[requester] < amount-1e-9 {
		return fmt.Errorf("%w: principal %d has capacity %g, requested %g",
			ErrInsufficient, requester, ws.caps[requester], amount)
	}
	if num.IsZero(amount) {
		for i := range out.Take {
			out.Take[i] = 0
		}
		copy(out.NewV, v)
		out.Theta = 0
		return nil
	}
	// The requester's U column, computed once: it bounds V'_i from below
	// in the LP and caps each source's take during normalization. Sources
	// outside colIdx[requester] have K = A = 0, so their U is exactly 0 —
	// zero-filling and walking the sparse column matches the dense scan.
	for i := range ws.uCol {
		ws.uCol[i] = 0
	}
	uIdx, uKs, uAs := al.colIdx[requester], al.colK[requester], al.colA[requester]
	for x, k := range uIdx {
		u := v[k] * uKs[x]
		if al.hasA {
			u += uAs[x]
		}
		if u > v[k] {
			u = v[k]
		}
		ws.uCol[k] = u
	}
	ws.uCol[requester] = v[requester]
	if al.cfg.Faithful {
		return al.planFaithful(out, v, requester, amount, ws)
	}
	return al.planSubstituted(out, v, requester, amount, ws)
}

// buildSkeleton constructs requester's substituted LP structure with
// placeholder bounds and right-hand sides. The variable and constraint
// order matches the historical per-call construction exactly, so solves
// over a rebound skeleton pivot identically.
func (al *Allocator) buildSkeleton(sk *planSkeleton, requester int) {
	if al.cfg.ComponentLP && !al.cfg.Faithful {
		al.buildComponentSkeleton(sk, requester)
		return
	}
	n := al.n
	m := lp.NewModel(lp.Minimize)

	// Tie-breaking: prefer drawing from weakly connected sources, whose
	// capacity matters least to everyone else. V'_i enters the objective
	// with −ε·conn_i so that *keeping* well-connected capacity is
	// rewarded.
	const eps = 1e-6
	vp := make([]lp.VarID, n)
	for i := 0; i < n; i++ {
		vp[i] = m.AddVar(fmt.Sprintf("V'_%d", i), 0, 0, -eps*al.conn[i])
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)

	// Σ V'_i = Σ V_i − amount  (eq. 5).
	sumTerms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		sumTerms[i] = lp.Term{Var: vp[i], Coeff: 1}
	}
	sk.consumeRow = m.AddConstraint("consume", sumTerms, lp.EQ, 0)

	// C'_i ≥ C_i − θ for the non-requesting principals (eq. 6; see the
	// package comment for the requester treatment). When absolute
	// agreements are present, min(V'_k·K_ki + A_ki, V'_k) is linearized
	// with auxiliary variables u_ki (its superlevel set is convex).
	sk.perturbRow = make([]int, n)
	for i := range sk.perturbRow {
		sk.perturbRow[i] = -1
	}
	for i := 0; i < n; i++ {
		if i == requester && !al.cfg.KeepRequesterConstraint {
			continue
		}
		terms := []lp.Term{{Var: vp[i], Coeff: 1}, {Var: theta, Coeff: 1}}
		// Walk the sparse column: colIdx lists exactly the k ≠ i with
		// K_ki ≠ 0 or A_ki ≠ 0, ascending — the same sources the dense
		// k-loop would admit, in the same order.
		idx, ks, as := al.colIdx[i], al.colK[i], al.colA[i]
		for x, k := range idx {
			hasAbs := al.hasA && as[x] > 0
			if !hasAbs {
				if !num.IsZero(ks[x]) {
					terms = append(terms, lp.Term{Var: vp[k], Coeff: ks[x]})
				}
				continue
			}
			u := m.AddVar(fmt.Sprintf("u_%d_%d", k, i), 0, lp.Inf, 0)
			cfRow := m.AddConstraint(fmt.Sprintf("cap_flow_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -ks[x]}}, lp.LE, as[x])
			sk.capFlowRows = append(sk.capFlowRows, capFlowRef{row: cfRow, k: k, i: int32(i)})
			m.AddConstraint(fmt.Sprintf("cap_own_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -1}}, lp.LE, 0)
			terms = append(terms, lp.Term{Var: u, Coeff: 1})
		}
		sk.perturbRow[i] = m.AddConstraint(fmt.Sprintf("perturb_%d", i), terms, lp.GE, 0)
	}
	sk.dropRow = -1
	if al.cfg.KeepRequesterConstraint {
		// eq. 3: C'_A = C_A − x, expressed on the same linearization.
		terms := []lp.Term{{Var: vp[requester], Coeff: 1}}
		idx, ks := al.colIdx[requester], al.colK[requester]
		for x, k := range idx {
			if !num.IsZero(ks[x]) {
				terms = append(terms, lp.Term{Var: vp[k], Coeff: ks[x]})
			}
		}
		sk.dropRow = m.AddConstraint("requester_drop", terms, lp.GE, 0)
	}
	sk.model = m
}

// buildComponentSkeleton is buildSkeleton under cfg.ComponentLP. In the
// full formulation every V'_k outside colIdx[requester] ∪ {requester}
// is pinned by its bounds (lo = v_k − U_k,req = v_k = up, because its U
// toward the requester is exactly zero), so those variables and every
// perturb row none of the live variables feeds are constants: folding
// them into the right-hand sides leaves the feasible set and the
// optimum value unchanged while the tableau shrinks to the agreement
// neighborhood. Fold values are recomputed from the column triples on
// every solve, so agreement-value rebinds stay as fresh as the full
// path's capFlowRows rebinding.
func (al *Allocator) buildComponentSkeleton(sk *planSkeleton, requester int) {
	n := al.n
	// Live variables: the requester merged into its ascending source
	// column.
	sk.varOf = make([]int32, n)
	for i := range sk.varOf {
		sk.varOf[i] = -1
	}
	live := make([]int32, 0, len(al.colIdx[requester])+1)
	merged := false
	for _, k := range al.colIdx[requester] {
		if !merged && int(k) > requester {
			live = append(live, int32(requester))
			merged = true
		}
		live = append(live, k)
	}
	if !merged {
		live = append(live, int32(requester))
	}
	sk.vars = live
	for x, i := range live {
		sk.varOf[i] = int32(x)
	}

	m := lp.NewModel(lp.Minimize)
	const eps = 1e-6
	vp := make([]lp.VarID, len(live))
	for x, i := range live {
		vp[x] = m.AddVar(fmt.Sprintf("V'_%d", i), 0, 0, -eps*al.conn[i])
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)

	// Σ_{live} V'_i = Σ_{live} V_i − amount (eq. 5 with the pinned
	// variables cancelled from both sides).
	sumTerms := make([]lp.Term, len(live))
	for x := range live {
		sumTerms[x] = lp.Term{Var: vp[x], Coeff: 1}
	}
	sk.consumeRow = m.AddConstraint("consume", sumTerms, lp.EQ, 0)

	// A perturb row survives only if a live variable appears in it: its
	// own V' is live, or a live source feeds it. Everything else is a
	// constant inequality any θ ≥ 0 already satisfies.
	touched := make([]bool, n)
	for _, k := range live {
		touched[k] = true
		for j, kv := range al.k[k] {
			if j != int(k) && !num.IsZero(kv) {
				touched[j] = true
			}
		}
		if al.hasA {
			for x, j := range al.aCols[k] {
				if j != k && al.aVals[k][x] > 0 {
					touched[j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if !touched[i] || (i == requester && !al.cfg.KeepRequesterConstraint) {
			continue
		}
		var terms []lp.Term
		if x := sk.varOf[i]; x >= 0 {
			terms = append(terms, lp.Term{Var: vp[x], Coeff: 1})
		}
		terms = append(terms, lp.Term{Var: theta, Coeff: 1})
		idx, ks, as := al.colIdx[i], al.colK[i], al.colA[i]
		for x, k := range idx {
			if sk.varOf[k] < 0 {
				continue // pinned source: folded into the RHS per solve
			}
			hasAbs := al.hasA && as[x] > 0
			if !hasAbs {
				if !num.IsZero(ks[x]) {
					terms = append(terms, lp.Term{Var: vp[sk.varOf[k]], Coeff: ks[x]})
				}
				continue
			}
			u := m.AddVar(fmt.Sprintf("u_%d_%d", k, i), 0, lp.Inf, 0)
			cfRow := m.AddConstraint(fmt.Sprintf("cap_flow_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[sk.varOf[k]], Coeff: -ks[x]}}, lp.LE, as[x])
			sk.capFlowRows = append(sk.capFlowRows, capFlowRef{row: cfRow, k: k, i: int32(i)})
			m.AddConstraint(fmt.Sprintf("cap_own_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[sk.varOf[k]], Coeff: -1}}, lp.LE, 0)
			terms = append(terms, lp.Term{Var: u, Coeff: 1})
		}
		sk.compRows = append(sk.compRows, compRow{
			row: m.AddConstraint(fmt.Sprintf("perturb_%d", i), terms, lp.GE, 0),
			i:   int32(i),
		})
	}
	sk.dropRow = -1
	if al.cfg.KeepRequesterConstraint {
		// eq. 3 references only the requester's own column — all live.
		terms := []lp.Term{{Var: vp[sk.varOf[requester]], Coeff: 1}}
		idx, ks := al.colIdx[requester], al.colK[requester]
		for x, k := range idx {
			if !num.IsZero(ks[x]) {
				terms = append(terms, lp.Term{Var: vp[sk.varOf[k]], Coeff: ks[x]})
			}
		}
		sk.dropRow = m.AddConstraint("requester_drop", terms, lp.GE, 0)
	}
	sk.model = m
}

// rebindComponent is planSubstituted's per-solve rebinding for a
// component skeleton: bounds and the consume row cover only the live
// variables, and every kept perturb row's RHS re-folds its pinned
// sources' contributions from the current column triples (so agreement
// value changes are as fresh here as capFlowRows rebinding makes them
// on the full path).
func (al *Allocator) rebindComponent(m *lp.Model, sk *planSkeleton, v []float64, requester int, amount float64, ws *planWS) {
	var sumLive float64
	for x, i := range sk.vars {
		lo := v[i] - ws.uCol[i]
		if lo < 0 {
			lo = 0
		}
		m.SetBounds(lp.VarID(x), lo, v[i])
		sumLive += v[i]
	}
	m.SetRHS(sk.consumeRow, sumLive-amount)
	for _, pr := range sk.compRows {
		i := int(pr.i)
		rhs := ws.caps[i]
		if sk.varOf[i] < 0 {
			rhs -= v[i] // pinned self term
		}
		idx, ks, as := al.colIdx[i], al.colK[i], al.colA[i]
		for x, k := range idx {
			if sk.varOf[k] >= 0 {
				continue // live: its terms are in the model
			}
			hasAbs := al.hasA && as[x] > 0
			if !hasAbs {
				if !num.IsZero(ks[x]) {
					rhs -= ks[x] * v[k]
				}
				continue
			}
			// The pinned flow takes its LP maximum min(v_k·K + A, v_k):
			// u_ki appears only positively in this ≥ row, so any optimum
			// admits it at its cap.
			u := v[k]*ks[x] + as[x]
			if u > v[k] {
				u = v[k]
			}
			rhs -= u
		}
		m.SetRHS(pr.row, rhs)
	}
	if sk.dropRow >= 0 {
		m.SetRHS(sk.dropRow, ws.caps[requester]-amount)
	}
	for _, cf := range sk.capFlowRows {
		m.SetRHS(cf.row, al.aAt(int(cf.k), int(cf.i)))
	}
}

// skeleton returns requester's LP skeleton, building it on first use.
func (al *Allocator) skeleton(requester int) *planSkeleton {
	sk := al.skel[requester]
	sk.once.Do(func() { al.buildSkeleton(sk, requester) })
	return sk
}

// planSubstituted solves the n+1-variable LP (variables V'_i and θ) by
// rebinding the cached skeleton: only the V'_i bounds and the consume /
// perturb / requester_drop right-hand sides change between calls.
func (al *Allocator) planSubstituted(out *Allocation, v []float64, requester int, amount float64, ws *planWS) error {
	n := al.n
	sk := al.skeleton(requester)
	m := ws.clones[requester]
	if m == nil {
		m = sk.model.Clone()
		ws.clones[requester] = m
	}

	if sk.vars != nil {
		al.rebindComponent(m, sk, v, requester, amount, ws)
	} else {
		for i := 0; i < n; i++ {
			lo := v[i] - ws.uCol[i]
			if lo < 0 {
				lo = 0
			}
			m.SetBounds(lp.VarID(i), lo, v[i])
		}
		var totalV float64
		for i := 0; i < n; i++ {
			totalV += v[i]
		}
		m.SetRHS(sk.consumeRow, totalV-amount)
		for i := 0; i < n; i++ {
			if r := sk.perturbRow[i]; r >= 0 {
				m.SetRHS(r, ws.caps[i])
			}
		}
		if sk.dropRow >= 0 {
			m.SetRHS(sk.dropRow, ws.caps[requester]-amount)
		}
		// cap_flow right-hand sides carry the current A values; rebinding
		// them per solve (same value the skeleton baked at build time,
		// unless a SetAgreement mutation moved it) is what lets skeletons
		// survive absolute-agreement value changes.
		for _, cf := range sk.capFlowRows {
			m.SetRHS(cf.row, al.aAt(int(cf.k), int(cf.i)))
		}
	}

	sol, err := al.solvePlan(m, requester, ws)
	if err != nil {
		return fmt.Errorf("core: allocation LP failed: %w", err)
	}
	return al.allocationInto(out, v, requester, amount, sol, sk, ws)
}

// solvePlan runs the rebound model, through the requester's warm slot
// when basis reuse is enabled. TryLock keeps concurrent Plans for the
// same requester correct without contention: the loser of the race
// simply solves cold in its own workspace.
func (al *Allocator) solvePlan(m *lp.Model, requester int, ws *planWS) (*lp.Solution, error) {
	if al.cfg.WarmStart && al.cfg.LPMethod == lp.Tableau {
		slot := al.warm[requester]
		if slot.mu.TryLock() {
			sol, err := m.ResolveFrom(&slot.ws)
			slot.mu.Unlock()
			return sol, err
		}
	}
	return m.SolveWithWorkspace(al.cfg.LPMethod, &ws.lpws)
}

// allocationInto converts an LP solution over V' variables into out,
// cleaning round-off and recomputing θ exactly. In the full
// formulations V'_i is variable i, so values are read by index; a
// component skeleton (sk non-nil with vars set) reads its live
// variables through the vars mapping, every pinned principal staying at
// exactly v_i with a zero take.
func (al *Allocator) allocationInto(out *Allocation, v []float64, requester int, amount float64, sol *lp.Solution, sk *planSkeleton, ws *planWS) error {
	n := al.n
	if sk != nil && sk.vars != nil {
		copy(out.NewV, v)
		for i := range out.Take {
			out.Take[i] = 0
		}
		for x, i := range sk.vars {
			nv := sol.Value(lp.VarID(x))
			if nv < 0 {
				nv = 0
			}
			if nv > v[i] {
				nv = v[i]
			}
			out.NewV[i] = nv
			out.Take[i] = v[i] - nv
		}
	} else {
		for i := 0; i < n; i++ {
			nv := sol.Value(lp.VarID(i))
			if nv < 0 {
				nv = 0
			}
			if nv > v[i] {
				nv = v[i]
			}
			out.NewV[i] = nv
			out.Take[i] = v[i] - nv
		}
	}
	if resid := normalizeTakes(out, v, amount, ws.uCol); math.Abs(resid) > 1e-9*math.Max(1, amount) {
		// Every source with a take is pinned at its agreement cap and the
		// solution still misses the request: the plan cannot be repaired
		// within the agreements. Surface it instead of returning an
		// allocation that silently under- or over-delivers.
		return fmt.Errorf("core: repaired allocation off by %g of %g requested with every source at its cap: %w",
			resid, amount, ErrInfeasible)
	}
	out.Theta = al.realizedTheta(v, out.NewV, requester, ws.caps, ws.after)
	return nil
}

// realizedTheta recomputes max_{i≠requester} (C_i − C'_i) from first
// principles (including the exact min-caps the LP linearized), using
// `after` as scratch for the post-allocation capacities.
func (al *Allocator) realizedTheta(v, newV []float64, requester int, caps, after []float64) float64 {
	al.capsInto(after, newV)
	worst := 0.0
	for i := range v {
		if i == requester {
			continue
		}
		if d := caps[i] - after[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// normalizeTakes removes round-off so that ΣTake == amount exactly: tiny
// negative takes are zeroed and the residual is absorbed by the largest
// takes — never beyond a source's agreement cap maxTake[i] (U_{i→A}), so
// round-off repair cannot manufacture an allocation the agreements forbid.
// It returns the residual the capped sources could not absorb (possible
// only when every source with a take is at its cap); callers must treat a
// non-negligible residual as an infeasible plan, not ship a short one.
func normalizeTakes(a *Allocation, v []float64, amount float64, maxTake []float64) float64 {
	var sum float64
	for i := range a.Take {
		if a.Take[i] < 1e-12 {
			a.Take[i] = 0
			a.NewV[i] = v[i]
		}
		sum += a.Take[i]
	}
	resid := amount - sum
	for iter := 0; !num.IsZero(resid) && iter < len(a.Take); iter++ {
		// Pick the source with the largest take that still has headroom
		// in the needed direction.
		best := -1
		for i := range a.Take {
			if resid > 0 {
				if a.Take[i] >= maxTake[i] {
					continue
				}
			} else if a.Take[i] <= 0 {
				continue
			}
			if best == -1 || a.Take[i] > a.Take[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		delta := resid
		if resid > 0 {
			if room := maxTake[best] - a.Take[best]; delta > room {
				delta = room
			}
		} else if -delta > a.Take[best] {
			delta = -a.Take[best]
		}
		a.Take[best] += delta
		a.NewV[best] = v[best] - a.Take[best]
		resid -= delta
	}
	return resid
}

func (al *Allocator) checkV(v []float64) {
	if len(v) != al.n {
		panic(fmt.Sprintf("core: got %d capacities for %d principals", len(v), al.n))
	}
	for i, x := range v {
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("core: capacity V[%d] = %g invalid", i, x))
		}
	}
}
