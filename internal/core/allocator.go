package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/transitive"

	"repro/internal/num"
)

// ErrInsufficient is wrapped by Plan when the requester's capacity C_A is
// smaller than the requested amount.
var ErrInsufficient = errors.New("core: insufficient capacity for request")

// Planner is the common interface of the LP allocator and the baseline
// schemes: decide where to take `amount` units for `requester` given the
// current per-principal capacities v.
type Planner interface {
	// Plan returns the allocation for a request, or ErrInsufficient.
	Plan(v []float64, requester int, amount float64) (*Allocation, error)
	// Capacities returns C_i for every principal at availability v.
	Capacities(v []float64) []float64
}

// Allocation is the outcome of planning one request.
type Allocation struct {
	// Take[i] is the amount drawn from principal i's resources
	// (V_i − V'_i ≥ 0); it sums to the requested amount.
	Take []float64
	// NewV[i] is the post-allocation availability V'_i.
	NewV []float64
	// Theta is the realized max capacity perturbation across the
	// non-requesting principals (the LP objective; recomputed exactly for
	// baseline planners too).
	Theta float64
}

// Config tunes the LP allocator.
type Config struct {
	// Level is the transitivity level m: 1 enforces only direct
	// agreements, n−1 (or 0, meaning "full") the complete closure.
	Level int
	// Approx switches the flow coefficients to the matrix-power
	// approximation (walks instead of simple paths). Default exact.
	Approx bool
	// Faithful keeps the paper's full n²+n+1-variable LP instead of the
	// substituted n+1-variable formulation. Results are identical; this
	// exists for validation and the ablation bench.
	Faithful bool
	// KeepRequesterConstraint applies eq. 6 to the requester as well,
	// exactly as printed in the paper. See the package comment for why
	// that makes the optimum non-discriminating; off by default.
	KeepRequesterConstraint bool
	// LPMethod selects the simplex implementation (lp.Tableau by
	// default; lp.Revised pays off on large sparse agreement graphs).
	LPMethod lp.Method
}

// Allocator enforces sharing agreements by linear programming. It is
// immutable after construction and safe for concurrent use.
type Allocator struct {
	n   int
	s   [][]float64 // relative agreements (kept for reporting)
	a   [][]float64 // absolute agreements (may be nil)
	k   [][]float64 // capped flow coefficients K^(level)
	cfg Config
	// conn[i] is a connectivity weight used for deterministic
	// tie-breaking: how much of i's capacity other principals can reach.
	conn []float64
}

// NewAllocator builds an allocator from a relative agreement matrix S and
// an optional absolute agreement matrix A (nil for none). The transitive
// flow coefficients are computed once here — they depend only on S and the
// level, not on the fluctuating capacities.
func NewAllocator(s [][]float64, a [][]float64, cfg Config) (*Allocator, error) {
	if err := transitive.Validate(s); err != nil {
		return nil, err
	}
	n := len(s)
	if a != nil {
		if len(a) != n {
			return nil, fmt.Errorf("core: A is %d×?, S is %d×%d", len(a), n, n)
		}
		for i, row := range a {
			if len(row) != n {
				return nil, fmt.Errorf("core: A row %d has %d entries, want %d", i, len(row), n)
			}
			for j, x := range row {
				if x < 0 {
					return nil, fmt.Errorf("core: A[%d][%d] = %g, must be non-negative", i, j, x)
				}
			}
		}
	}
	level := cfg.Level
	if level <= 0 {
		level = n - 1
	}
	var t [][]float64
	if cfg.Approx {
		t = transitive.Approx(s, level)
	} else {
		// Exact enumeration is exponential on dense graphs; refuse
		// plainly instead of hanging (a dense 20-principal graph has
		// ~10^17 cycle-free chains). The budget admits the paper's
		// complete 10-principal graph at full closure (~10M steps,
		// ~100 ms) but rejects dense graphs of 11+ principals.
		const exactBudget = 50_000_000
		if !transitive.WithinBudget(s, level, exactBudget) {
			return nil, fmt.Errorf("core: exact transitive closure would exceed %d steps for this agreement graph; set Config.Approx or lower Config.Level", exactBudget)
		}
		t = transitive.Exact(s, level)
	}
	k := transitive.Cap(t)
	al := &Allocator{n: n, s: s, a: a, k: k, cfg: cfg, conn: make([]float64, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				al.conn[i] += k[i][j]
			}
		}
	}
	return al, nil
}

// N returns the number of principals.
func (al *Allocator) N() int { return al.n }

// FlowCoefficients returns the capped transitive coefficients K in use
// (row i: the fraction of i's capacity reachable by each principal).
func (al *Allocator) FlowCoefficients() [][]float64 {
	out := make([][]float64, al.n)
	for i := range out {
		out[i] = append([]float64(nil), al.k[i]...)
	}
	return out
}

// Capacities returns C_i = V_i + Σ_k U_ki for the current availability.
func (al *Allocator) Capacities(v []float64) []float64 {
	al.checkV(v)
	return transitive.Capacities(v, al.k, al.a)
}

// sourceCap returns U_iA: how much of principal i's current availability
// the requester may draw.
func (al *Allocator) sourceCap(v []float64, i, requester int) float64 {
	if i == requester {
		return v[i]
	}
	u := v[i] * al.k[i][requester]
	if al.a != nil {
		u += al.a[i][requester]
	}
	if u > v[i] {
		u = v[i]
	}
	return u
}

// Plan chooses the allocation minimizing the maximum capacity perturbation
// θ across the other principals (the paper's global metric), subject to
// the agreement-derived per-source caps. It returns ErrInsufficient
// (wrapped, with the shortfall) if C_requester < amount.
func (al *Allocator) Plan(v []float64, requester int, amount float64) (*Allocation, error) {
	al.checkV(v)
	if requester < 0 || requester >= al.n {
		panic(fmt.Sprintf("core: requester %d out of range [0,%d)", requester, al.n))
	}
	if amount < 0 {
		return nil, fmt.Errorf("core: negative request %g", amount)
	}
	caps := al.Capacities(v)
	if caps[requester] < amount-1e-9 {
		return nil, fmt.Errorf("%w: principal %d has capacity %g, requested %g",
			ErrInsufficient, requester, caps[requester], amount)
	}
	if num.IsZero(amount) {
		return &Allocation{Take: make([]float64, al.n), NewV: append([]float64(nil), v...)}, nil
	}
	if al.cfg.Faithful {
		return al.planFaithful(v, requester, amount, caps)
	}
	return al.planSubstituted(v, requester, amount, caps)
}

// planSubstituted builds the n+1-variable LP: variables V'_i and θ.
func (al *Allocator) planSubstituted(v []float64, requester int, amount float64, caps []float64) (*Allocation, error) {
	n := al.n
	m := lp.NewModel(lp.Minimize)

	// Tie-breaking: prefer drawing from weakly connected sources, whose
	// capacity matters least to everyone else. V'_i enters the objective
	// with −ε·conn_i so that *keeping* well-connected capacity is
	// rewarded.
	const eps = 1e-6
	vp := make([]lp.VarID, n)
	for i := 0; i < n; i++ {
		hi := v[i]
		lo := v[i] - al.sourceCap(v, i, requester)
		if lo < 0 {
			lo = 0
		}
		vp[i] = m.AddVar(fmt.Sprintf("V'_%d", i), lo, hi, -eps*al.conn[i])
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)

	// Σ V'_i = Σ V_i − amount  (eq. 5).
	var totalV float64
	sumTerms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		totalV += v[i]
		sumTerms[i] = lp.Term{Var: vp[i], Coeff: 1}
	}
	m.AddConstraint("consume", sumTerms, lp.EQ, totalV-amount)

	// C'_i ≥ C_i − θ for the non-requesting principals (eq. 6; see the
	// package comment for the requester treatment). When absolute
	// agreements are present, min(V'_k·K_ki + A_ki, V'_k) is linearized
	// with auxiliary variables u_ki (its superlevel set is convex).
	for i := 0; i < n; i++ {
		if i == requester && !al.cfg.KeepRequesterConstraint {
			continue
		}
		terms := []lp.Term{{Var: vp[i], Coeff: 1}, {Var: theta, Coeff: 1}}
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			hasAbs := al.a != nil && al.a[k][i] > 0
			if !hasAbs {
				if !num.IsZero(al.k[k][i]) {
					terms = append(terms, lp.Term{Var: vp[k], Coeff: al.k[k][i]})
				}
				continue
			}
			u := m.AddVar(fmt.Sprintf("u_%d_%d", k, i), 0, lp.Inf, 0)
			m.AddConstraint(fmt.Sprintf("cap_flow_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -al.k[k][i]}}, lp.LE, al.a[k][i])
			m.AddConstraint(fmt.Sprintf("cap_own_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -1}}, lp.LE, 0)
			terms = append(terms, lp.Term{Var: u, Coeff: 1})
		}
		m.AddConstraint(fmt.Sprintf("perturb_%d", i), terms, lp.GE, caps[i])
	}
	if al.cfg.KeepRequesterConstraint {
		// eq. 3: C'_A = C_A − x, expressed on the same linearization.
		terms := []lp.Term{{Var: vp[requester], Coeff: 1}}
		for k := 0; k < n; k++ {
			if k == requester {
				continue
			}
			if !num.IsZero(al.k[k][requester]) {
				terms = append(terms, lp.Term{Var: vp[k], Coeff: al.k[k][requester]})
			}
		}
		m.AddConstraint("requester_drop", terms, lp.GE, caps[requester]-amount)
	}

	sol, err := m.SolveWith(al.cfg.LPMethod)
	if err != nil {
		return nil, fmt.Errorf("core: allocation LP failed: %w", err)
	}
	return al.allocationFrom(v, requester, amount, sol, vp, caps)
}

// allocationFrom converts an LP solution over V' variables into an
// Allocation, cleaning round-off and recomputing θ exactly.
func (al *Allocator) allocationFrom(v []float64, requester int, amount float64, sol *lp.Solution, vp []lp.VarID, caps []float64) (*Allocation, error) {
	n := al.n
	out := &Allocation{Take: make([]float64, n), NewV: make([]float64, n)}
	for i := 0; i < n; i++ {
		nv := sol.Value(vp[i])
		if nv < 0 {
			nv = 0
		}
		if nv > v[i] {
			nv = v[i]
		}
		out.NewV[i] = nv
		out.Take[i] = v[i] - nv
	}
	normalizeTakes(out, v, amount)
	out.Theta = al.realizedTheta(v, out.NewV, requester, caps)
	return out, nil
}

// realizedTheta recomputes max_{i≠requester} (C_i − C'_i) from first
// principles (including the exact min-caps the LP linearized).
func (al *Allocator) realizedTheta(v, newV []float64, requester int, caps []float64) float64 {
	after := transitive.Capacities(newV, al.k, al.a)
	worst := 0.0
	for i := range v {
		if i == requester {
			continue
		}
		if d := caps[i] - after[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// normalizeTakes removes round-off so that ΣTake == amount exactly: tiny
// negative takes are zeroed and the largest take absorbs the residual.
func normalizeTakes(a *Allocation, v []float64, amount float64) {
	var sum float64
	maxIdx := 0
	for i := range a.Take {
		if a.Take[i] < 1e-12 {
			a.Take[i] = 0
			a.NewV[i] = v[i]
		}
		sum += a.Take[i]
		if a.Take[i] > a.Take[maxIdx] {
			maxIdx = i
		}
	}
	resid := amount - sum
	if !num.IsZero(resid) && a.Take[maxIdx]+resid >= 0 {
		a.Take[maxIdx] += resid
		a.NewV[maxIdx] = v[maxIdx] - a.Take[maxIdx]
	}
}

func (al *Allocator) checkV(v []float64) {
	if len(v) != al.n {
		panic(fmt.Sprintf("core: got %d capacities for %d principals", len(v), al.n))
	}
	for i, x := range v {
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("core: capacity V[%d] = %g invalid", i, x))
		}
	}
}
