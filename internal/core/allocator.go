package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/lp"
	"repro/internal/transitive"

	"repro/internal/num"
)

// ErrInsufficient is wrapped by Plan when the requester's capacity C_A is
// smaller than the requested amount.
var ErrInsufficient = errors.New("core: insufficient capacity for request")

// ErrInfeasible is wrapped by Plan when the LP solution cannot be repaired
// into an exact allocation: round-off cleanup left a residual with every
// contributing source already at its agreement cap, so delivering the
// requested amount would violate an agreement.
var ErrInfeasible = errors.New("core: allocation infeasible within agreement caps")

// Planner is the common interface of the LP allocator and the baseline
// schemes: decide where to take `amount` units for `requester` given the
// current per-principal capacities v.
type Planner interface {
	// Plan returns the allocation for a request, or ErrInsufficient.
	Plan(v []float64, requester int, amount float64) (*Allocation, error)
	// Capacities returns C_i for every principal at availability v.
	Capacities(v []float64) []float64
}

// Allocation is the outcome of planning one request.
type Allocation struct {
	// Take[i] is the amount drawn from principal i's resources
	// (V_i − V'_i ≥ 0); it sums to the requested amount.
	Take []float64
	// NewV[i] is the post-allocation availability V'_i.
	NewV []float64
	// Theta is the realized max capacity perturbation across the
	// non-requesting principals (the LP objective; recomputed exactly for
	// baseline planners too).
	Theta float64
}

// Config tunes the LP allocator.
type Config struct {
	// Level is the transitivity level m: 1 enforces only direct
	// agreements, n−1 (or 0, meaning "full") the complete closure.
	Level int
	// Approx switches the flow coefficients to the matrix-power
	// approximation (walks instead of simple paths). Default exact.
	Approx bool
	// Faithful keeps the paper's full n²+n+1-variable LP instead of the
	// substituted n+1-variable formulation. Results are identical; this
	// exists for validation and the ablation bench.
	Faithful bool
	// KeepRequesterConstraint applies eq. 6 to the requester as well,
	// exactly as printed in the paper. See the package comment for why
	// that makes the optimum non-discriminating; off by default.
	KeepRequesterConstraint bool
	// LPMethod selects the simplex implementation (lp.Tableau by
	// default; lp.Revised pays off on large sparse agreement graphs).
	LPMethod lp.Method
	// WarmStart reuses each requester's final simplex basis across Plan
	// calls (lp.ResolveFrom): when only the availability vector moved,
	// revalidating the old basis replaces the full pivot sequence. Warm
	// answers agree with cold ones within num.SolveTol, not bit-for-bit,
	// so this is off by default — deployments that replay logs for
	// byte-identical state must leave it off. Only effective with the
	// tableau method (lp.Tableau); other methods always solve cold.
	WarmStart bool
}

// fullLevel is the Level sentinel requesting full transitivity: any
// value >= n-1 is clamped per current matrix size, so a closure built
// with fullLevel keeps meaning "the complete closure" as it grows.
const fullLevel = 1 << 30

// exactBudget caps the chain-enumeration steps of exact closures. Exact
// enumeration is exponential on dense graphs; refuse plainly instead of
// hanging (a dense 20-principal graph has ~10^17 cycle-free chains). The
// budget admits the paper's complete 10-principal graph at full closure
// (~10M steps, ~100 ms) but rejects dense graphs of 11+ principals. The
// same budget gates the incremental UpdateEdge path via the closure
// handle, so a mutation that densifies the graph past the budget is
// refused exactly like a from-scratch build would be.
const exactBudget = 50_000_000

// Allocator enforces sharing agreements by linear programming. Its
// agreement state is immutable after construction and it is safe for
// concurrent use: the lazily built LP skeletons and the pooled plan
// workspaces are internally synchronized.
type Allocator struct {
	n   int
	s   [][]float64 // relative agreements (kept for reporting)
	a   [][]float64 // absolute agreements (may be nil)
	k   [][]float64 // capped flow coefficients K^(level)
	cfg Config
	// conn[i] is a connectivity weight used for deterministic
	// tie-breaking: how much of i's capacity other principals can reach.
	conn []float64
	// colIdx[i] lists the sources k≠i with a nonzero flow into i
	// (K_ki ≠ 0 or A_ki ≠ 0), in ascending order. Capacity sums walk
	// this index instead of scanning the dense column; the skipped terms
	// are exactly zero, so the result is bit-identical.
	colIdx [][]int32
	// skel[r] caches the LP skeleton for requester r: the constraint
	// coefficients depend only on K and the sparsity pattern of A, so per
	// Plan call only the variable bounds and right-hand sides are rebound.
	skel []*planSkeleton
	// clo maintains the transitive closure incrementally; SetShare derives
	// allocators through its delta path instead of re-enumerating chains.
	clo *transitive.Closure
	// warm[r] holds requester r's saved simplex basis for WarmStart plans.
	warm []*warmSlot
	pool sync.Pool // *planWS
}

// warmSlot serializes basis reuse for one requester: the lp.Workspace
// holding the saved final basis, plus a mutex so a concurrent Plan for
// the same requester falls back to a cold solve instead of contending.
type warmSlot struct {
	mu sync.Mutex
	ws lp.Workspace
}

// planSkeleton is the reusable part of requester r's substituted LP:
// the model structure plus the rows whose right-hand sides change per
// solve. Built once per requester on first use.
type planSkeleton struct {
	once       sync.Once
	model      *lp.Model
	consumeRow int
	perturbRow []int // row of perturb_i, -1 where the row does not exist
	dropRow    int   // requester_drop row, -1 unless KeepRequesterConstraint
	// capFlowRows lists the cap_flow_k_i rows whose right-hand side is
	// A[k][i]: rebound per solve so the skeleton depends only on A's
	// sparsity pattern, never its values — SetAgreement value changes
	// share every skeleton.
	capFlowRows []capFlowRef
}

// capFlowRef locates one cap_flow_k_i row for per-solve RHS rebinding.
type capFlowRef struct {
	row  int
	k, i int32
}

// planWS is the per-Plan scratch recycled through Allocator.pool: the
// capacity/source-cap vectors, the per-requester rebindable model clones,
// and the LP solver workspace.
type planWS struct {
	caps   []float64 // C_i before the allocation
	uCol   []float64 // U_{i→requester} (v[i] for the requester itself)
	after  []float64 // C_i after the candidate allocation
	chain  []float64 // PlanBatch's running availability between requests
	clones []*lp.Model
	lpws   lp.Workspace
}

// NewAllocator builds an allocator from a relative agreement matrix S and
// an optional absolute agreement matrix A (nil for none). The transitive
// flow coefficients are computed once here — they depend only on S and the
// level, not on the fluctuating capacities.
func NewAllocator(s [][]float64, a [][]float64, cfg Config) (*Allocator, error) {
	if err := transitive.Validate(s); err != nil {
		return nil, err
	}
	n := len(s)
	if a != nil {
		if len(a) != n {
			return nil, fmt.Errorf("core: A is %d×?, S is %d×%d", len(a), n, n)
		}
		for i, row := range a {
			if len(row) != n {
				return nil, fmt.Errorf("core: A row %d has %d entries, want %d", i, len(row), n)
			}
			for j, x := range row {
				if x < 0 {
					return nil, fmt.Errorf("core: A[%d][%d] = %g, must be non-negative", i, j, x)
				}
			}
		}
	}
	level := cfg.Level
	if level <= 0 {
		// The sentinel keeps requesting the complete closure even if the
		// allocator later grows (clamping is redone per current n).
		level = fullLevel
	}
	if !cfg.Approx && !transitive.WithinBudget(s, level, exactBudget) {
		return nil, fmt.Errorf("core: exact transitive closure would exceed %d steps for this agreement graph; set Config.Approx or lower Config.Level", exactBudget)
	}
	al := &Allocator{n: n, s: s, a: a, cfg: cfg, conn: make([]float64, n)}
	al.clo = transitive.NewClosure(s, level, cfg.Approx).WithBudget(exactBudget)
	k := transitive.Cap(al.clo.T())
	al.k = k
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				al.conn[i] += k[i][j]
			}
		}
	}
	al.colIdx = make([][]int32, n)
	for i := 0; i < n; i++ {
		al.colIdx[i] = al.colIdxFor(i)
	}
	al.skel = make([]*planSkeleton, n)
	for i := range al.skel {
		al.skel[i] = &planSkeleton{}
	}
	al.warm = make([]*warmSlot, n)
	for i := range al.warm {
		al.warm[i] = &warmSlot{}
	}
	al.initPool()
	return al, nil
}

// colIdxFor computes the sparse column index for principal i: the
// sources kk ≠ i with a nonzero flow into i, ascending.
func (al *Allocator) colIdxFor(i int) []int32 {
	var out []int32
	for kk := 0; kk < al.n; kk++ {
		if kk == i {
			continue
		}
		if !num.IsZero(al.k[kk][i]) || (al.a != nil && !num.IsZero(al.a[kk][i])) {
			out = append(out, int32(kk))
		}
	}
	return out
}

// initPool (re)binds the plan-workspace pool; every Allocator — built or
// derived — gets its own pool because sync.Pool must not be copied.
func (al *Allocator) initPool() {
	n := al.n
	al.pool.New = func() any {
		return &planWS{
			caps:   make([]float64, n),
			uCol:   make([]float64, n),
			after:  make([]float64, n),
			chain:  make([]float64, n),
			clones: make([]*lp.Model, n),
		}
	}
}

// N returns the number of principals.
func (al *Allocator) N() int { return al.n }

// FlowCoefficients returns the capped transitive coefficients K in use
// (row i: the fraction of i's capacity reachable by each principal).
func (al *Allocator) FlowCoefficients() [][]float64 {
	out := make([][]float64, al.n)
	for i := range out {
		out[i] = append([]float64(nil), al.k[i]...)
	}
	return out
}

// Capacities returns C_i = V_i + Σ_k U_ki for the current availability.
func (al *Allocator) Capacities(v []float64) []float64 {
	al.checkV(v)
	return transitive.Capacities(v, al.k, al.a)
}

// sourceCap returns U_iA: how much of principal i's current availability
// the requester may draw.
func (al *Allocator) sourceCap(v []float64, i, requester int) float64 {
	if i == requester {
		return v[i]
	}
	return al.uFlow(v, i, requester)
}

// uFlow returns U_ki = min(V_k·K_ki + A_ki, V_k) for k ≠ i, in the exact
// operation order of transitive.Capacities.
func (al *Allocator) uFlow(v []float64, k, i int) float64 {
	u := v[k] * al.k[k][i]
	if al.a != nil {
		u += al.a[k][i]
	}
	if u > v[k] {
		u = v[k]
	}
	return u
}

// capsInto computes C_i = V_i + Σ_{k≠i} U_ki into dst, walking the
// precomputed sparse column index. Sources skipped by the index have
// K_ki = 0 and A_ki = 0, so their U_ki is exactly zero and the sum is
// bit-identical to the dense transitive.Capacities scan.
func (al *Allocator) capsInto(dst, v []float64) {
	for i := 0; i < al.n; i++ {
		c := v[i]
		for _, k := range al.colIdx[i] {
			c += al.uFlow(v, int(k), i)
		}
		dst[i] = c
	}
}

// Plan chooses the allocation minimizing the maximum capacity perturbation
// θ across the other principals (the paper's global metric), subject to
// the agreement-derived per-source caps. It returns ErrInsufficient
// (wrapped, with the shortfall) if C_requester < amount.
func (al *Allocator) Plan(v []float64, requester int, amount float64) (*Allocation, error) {
	al.checkV(v)
	if requester < 0 || requester >= al.n {
		panic(fmt.Sprintf("core: requester %d out of range [0,%d)", requester, al.n))
	}
	ws := al.pool.Get().(*planWS)
	defer al.pool.Put(ws)
	out := &Allocation{Take: make([]float64, al.n), NewV: make([]float64, al.n)}
	if err := al.planInto(out, v, requester, amount, ws); err != nil {
		return nil, err
	}
	return out, nil
}

// planInto plans one request into out (Take and NewV pre-sized to n).
// Factored out of Plan so PlanBatch can solve many requests against one
// workspace and bulk-allocated result arrays; the computation is
// bit-identical to Plan's.
func (al *Allocator) planInto(out *Allocation, v []float64, requester int, amount float64, ws *planWS) error {
	if amount < 0 {
		return fmt.Errorf("core: negative request %g", amount)
	}
	al.capsInto(ws.caps, v)
	if ws.caps[requester] < amount-1e-9 {
		return fmt.Errorf("%w: principal %d has capacity %g, requested %g",
			ErrInsufficient, requester, ws.caps[requester], amount)
	}
	if num.IsZero(amount) {
		for i := range out.Take {
			out.Take[i] = 0
		}
		copy(out.NewV, v)
		out.Theta = 0
		return nil
	}
	// The requester's U column, computed once: it bounds V'_i from below
	// in the LP and caps each source's take during normalization.
	for i := 0; i < al.n; i++ {
		ws.uCol[i] = al.sourceCap(v, i, requester)
	}
	if al.cfg.Faithful {
		return al.planFaithful(out, v, requester, amount, ws)
	}
	return al.planSubstituted(out, v, requester, amount, ws)
}

// buildSkeleton constructs requester's substituted LP structure with
// placeholder bounds and right-hand sides. The variable and constraint
// order matches the historical per-call construction exactly, so solves
// over a rebound skeleton pivot identically.
func (al *Allocator) buildSkeleton(sk *planSkeleton, requester int) {
	n := al.n
	m := lp.NewModel(lp.Minimize)

	// Tie-breaking: prefer drawing from weakly connected sources, whose
	// capacity matters least to everyone else. V'_i enters the objective
	// with −ε·conn_i so that *keeping* well-connected capacity is
	// rewarded.
	const eps = 1e-6
	vp := make([]lp.VarID, n)
	for i := 0; i < n; i++ {
		vp[i] = m.AddVar(fmt.Sprintf("V'_%d", i), 0, 0, -eps*al.conn[i])
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)

	// Σ V'_i = Σ V_i − amount  (eq. 5).
	sumTerms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		sumTerms[i] = lp.Term{Var: vp[i], Coeff: 1}
	}
	sk.consumeRow = m.AddConstraint("consume", sumTerms, lp.EQ, 0)

	// C'_i ≥ C_i − θ for the non-requesting principals (eq. 6; see the
	// package comment for the requester treatment). When absolute
	// agreements are present, min(V'_k·K_ki + A_ki, V'_k) is linearized
	// with auxiliary variables u_ki (its superlevel set is convex).
	sk.perturbRow = make([]int, n)
	for i := range sk.perturbRow {
		sk.perturbRow[i] = -1
	}
	for i := 0; i < n; i++ {
		if i == requester && !al.cfg.KeepRequesterConstraint {
			continue
		}
		terms := []lp.Term{{Var: vp[i], Coeff: 1}, {Var: theta, Coeff: 1}}
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			hasAbs := al.a != nil && al.a[k][i] > 0
			if !hasAbs {
				if !num.IsZero(al.k[k][i]) {
					terms = append(terms, lp.Term{Var: vp[k], Coeff: al.k[k][i]})
				}
				continue
			}
			u := m.AddVar(fmt.Sprintf("u_%d_%d", k, i), 0, lp.Inf, 0)
			cfRow := m.AddConstraint(fmt.Sprintf("cap_flow_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -al.k[k][i]}}, lp.LE, al.a[k][i])
			sk.capFlowRows = append(sk.capFlowRows, capFlowRef{row: cfRow, k: int32(k), i: int32(i)})
			m.AddConstraint(fmt.Sprintf("cap_own_%d_%d", k, i),
				[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -1}}, lp.LE, 0)
			terms = append(terms, lp.Term{Var: u, Coeff: 1})
		}
		sk.perturbRow[i] = m.AddConstraint(fmt.Sprintf("perturb_%d", i), terms, lp.GE, 0)
	}
	sk.dropRow = -1
	if al.cfg.KeepRequesterConstraint {
		// eq. 3: C'_A = C_A − x, expressed on the same linearization.
		terms := []lp.Term{{Var: vp[requester], Coeff: 1}}
		for k := 0; k < n; k++ {
			if k == requester {
				continue
			}
			if !num.IsZero(al.k[k][requester]) {
				terms = append(terms, lp.Term{Var: vp[k], Coeff: al.k[k][requester]})
			}
		}
		sk.dropRow = m.AddConstraint("requester_drop", terms, lp.GE, 0)
	}
	sk.model = m
}

// skeleton returns requester's LP skeleton, building it on first use.
func (al *Allocator) skeleton(requester int) *planSkeleton {
	sk := al.skel[requester]
	sk.once.Do(func() { al.buildSkeleton(sk, requester) })
	return sk
}

// planSubstituted solves the n+1-variable LP (variables V'_i and θ) by
// rebinding the cached skeleton: only the V'_i bounds and the consume /
// perturb / requester_drop right-hand sides change between calls.
func (al *Allocator) planSubstituted(out *Allocation, v []float64, requester int, amount float64, ws *planWS) error {
	n := al.n
	sk := al.skeleton(requester)
	m := ws.clones[requester]
	if m == nil {
		m = sk.model.Clone()
		ws.clones[requester] = m
	}

	for i := 0; i < n; i++ {
		lo := v[i] - ws.uCol[i]
		if lo < 0 {
			lo = 0
		}
		m.SetBounds(lp.VarID(i), lo, v[i])
	}
	var totalV float64
	for i := 0; i < n; i++ {
		totalV += v[i]
	}
	m.SetRHS(sk.consumeRow, totalV-amount)
	for i := 0; i < n; i++ {
		if r := sk.perturbRow[i]; r >= 0 {
			m.SetRHS(r, ws.caps[i])
		}
	}
	if sk.dropRow >= 0 {
		m.SetRHS(sk.dropRow, ws.caps[requester]-amount)
	}
	// cap_flow right-hand sides carry the current A values; rebinding them
	// per solve (same value the skeleton baked at build time, unless a
	// SetAgreement mutation moved it) is what lets skeletons survive
	// absolute-agreement value changes.
	for _, cf := range sk.capFlowRows {
		m.SetRHS(cf.row, al.a[cf.k][cf.i])
	}

	sol, err := al.solvePlan(m, requester, ws)
	if err != nil {
		return fmt.Errorf("core: allocation LP failed: %w", err)
	}
	return al.allocationInto(out, v, requester, amount, sol, ws)
}

// solvePlan runs the rebound model, through the requester's warm slot
// when basis reuse is enabled. TryLock keeps concurrent Plans for the
// same requester correct without contention: the loser of the race
// simply solves cold in its own workspace.
func (al *Allocator) solvePlan(m *lp.Model, requester int, ws *planWS) (*lp.Solution, error) {
	if al.cfg.WarmStart && al.cfg.LPMethod == lp.Tableau {
		slot := al.warm[requester]
		if slot.mu.TryLock() {
			sol, err := m.ResolveFrom(&slot.ws)
			slot.mu.Unlock()
			return sol, err
		}
	}
	return m.SolveWithWorkspace(al.cfg.LPMethod, &ws.lpws)
}

// allocationInto converts an LP solution over V' variables into out,
// cleaning round-off and recomputing θ exactly. In both LP formulations
// V'_i is variable i, so values are read by index.
func (al *Allocator) allocationInto(out *Allocation, v []float64, requester int, amount float64, sol *lp.Solution, ws *planWS) error {
	n := al.n
	for i := 0; i < n; i++ {
		nv := sol.Value(lp.VarID(i))
		if nv < 0 {
			nv = 0
		}
		if nv > v[i] {
			nv = v[i]
		}
		out.NewV[i] = nv
		out.Take[i] = v[i] - nv
	}
	if resid := normalizeTakes(out, v, amount, ws.uCol); math.Abs(resid) > 1e-9*math.Max(1, amount) {
		// Every source with a take is pinned at its agreement cap and the
		// solution still misses the request: the plan cannot be repaired
		// within the agreements. Surface it instead of returning an
		// allocation that silently under- or over-delivers.
		return fmt.Errorf("core: repaired allocation off by %g of %g requested with every source at its cap: %w",
			resid, amount, ErrInfeasible)
	}
	out.Theta = al.realizedTheta(v, out.NewV, requester, ws.caps, ws.after)
	return nil
}

// realizedTheta recomputes max_{i≠requester} (C_i − C'_i) from first
// principles (including the exact min-caps the LP linearized), using
// `after` as scratch for the post-allocation capacities.
func (al *Allocator) realizedTheta(v, newV []float64, requester int, caps, after []float64) float64 {
	al.capsInto(after, newV)
	worst := 0.0
	for i := range v {
		if i == requester {
			continue
		}
		if d := caps[i] - after[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// normalizeTakes removes round-off so that ΣTake == amount exactly: tiny
// negative takes are zeroed and the residual is absorbed by the largest
// takes — never beyond a source's agreement cap maxTake[i] (U_{i→A}), so
// round-off repair cannot manufacture an allocation the agreements forbid.
// It returns the residual the capped sources could not absorb (possible
// only when every source with a take is at its cap); callers must treat a
// non-negligible residual as an infeasible plan, not ship a short one.
func normalizeTakes(a *Allocation, v []float64, amount float64, maxTake []float64) float64 {
	var sum float64
	for i := range a.Take {
		if a.Take[i] < 1e-12 {
			a.Take[i] = 0
			a.NewV[i] = v[i]
		}
		sum += a.Take[i]
	}
	resid := amount - sum
	for iter := 0; !num.IsZero(resid) && iter < len(a.Take); iter++ {
		// Pick the source with the largest take that still has headroom
		// in the needed direction.
		best := -1
		for i := range a.Take {
			if resid > 0 {
				if a.Take[i] >= maxTake[i] {
					continue
				}
			} else if a.Take[i] <= 0 {
				continue
			}
			if best == -1 || a.Take[i] > a.Take[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		delta := resid
		if resid > 0 {
			if room := maxTake[best] - a.Take[best]; delta > room {
				delta = room
			}
		} else if -delta > a.Take[best] {
			delta = -a.Take[best]
		}
		a.Take[best] += delta
		a.NewV[best] = v[best] - a.Take[best]
		resid -= delta
	}
	return resid
}

func (al *Allocator) checkV(v []float64) {
	if len(v) != al.n {
		panic(fmt.Sprintf("core: got %d capacities for %d principals", len(v), al.n))
	}
	for i, x := range v {
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("core: capacity V[%d] = %g invalid", i, x))
		}
	}
}
