package core

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func newTestLedger(t *testing.T) *Ledger {
	t.Helper()
	// Principal 1 shares 50% with 0.
	al, err := NewAllocator([][]float64{{0, 0}, {0.5, 0}}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(al, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLedgerAcquireRelease(t *testing.T) {
	l := newTestLedger(t)
	lease, err := l.Acquire(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if l.Outstanding() != 1 {
		t.Errorf("Outstanding = %d", l.Outstanding())
	}
	var total float64
	for _, take := range lease.Take {
		total += take
	}
	almost(t, total, 15, 1e-6, "lease takes")
	avail := l.Available()
	almost(t, avail[0]+avail[1], 15, 1e-6, "remaining availability")

	if err := l.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	avail = l.Available()
	almost(t, avail[0], 10, 1e-6, "restored availability 0")
	almost(t, avail[1], 20, 1e-6, "restored availability 1")
	if err := l.Release(lease.ID); err == nil {
		t.Error("double release accepted")
	}
}

func TestLedgerInsufficient(t *testing.T) {
	l := newTestLedger(t)
	// C_0 = 10 + 10 = 20.
	if _, err := l.Acquire(0, 25); !errors.Is(err, ErrInsufficient) {
		t.Errorf("want ErrInsufficient, got %v", err)
	}
	// Drain and verify the pool shrinks for the next caller: after taking
	// 18, at most 12 remain with principal 1, of which 0 may use half.
	if _, err := l.Acquire(0, 18); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(0, 7); !errors.Is(err, ErrInsufficient) {
		t.Errorf("second acquire should fail (capacity is now 6), got %v", err)
	}
}

func TestLedgerSetCapacity(t *testing.T) {
	l := newTestLedger(t)
	if err := l.SetCapacity(1, 40); err != nil {
		t.Fatal(err)
	}
	caps := l.Capacities()
	almost(t, caps[0], 30, 1e-6, "C_0 after capacity raise")
	if err := l.SetCapacity(1, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := l.SetCapacity(9, 1); err == nil {
		t.Error("unknown principal accepted")
	}
}

func TestLedgerCapacityShrinkWithLeases(t *testing.T) {
	l := newTestLedger(t)
	lease, err := l.Acquire(0, 15) // takes 10 from 0 and 5 from 1
	if err != nil {
		t.Fatal(err)
	}
	// Principal 1's machine shrinks to 5 while 5 are leased out.
	if err := l.SetCapacity(1, 5); err != nil {
		t.Fatal(err)
	}
	avail := l.Available()
	if avail[1] < 0 {
		t.Errorf("availability went negative: %v", avail)
	}
	// Releasing must not exceed the new capacity.
	if err := l.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	avail = l.Available()
	if avail[1] > 5+1e-9 {
		t.Errorf("availability %g exceeds shrunk capacity 5", avail[1])
	}
}

func TestLedgerConcurrentAcquireRelease(t *testing.T) {
	n := 8
	s := make([][]float64, n)
	v := make([]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		v[i] = 100
		for j := range s[i] {
			if i != j {
				s[i][j] = 0.5 / float64(n-1)
			}
		}
	}
	al, err := NewAllocator(s, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(al, v)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lease, err := l.Acquire(p, 10)
				if err != nil {
					continue // pool temporarily drained; fine
				}
				if err := l.Release(lease.ID); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Outstanding() != 0 {
		t.Errorf("leaked %d leases", l.Outstanding())
	}
	avail := l.Available()
	for i, a := range avail {
		if math.Abs(a-100) > 1e-6 {
			t.Errorf("availability[%d] = %g, want 100 restored", i, a)
		}
	}
}

func TestLedgerOutstandingFor(t *testing.T) {
	l := newTestLedger(t)
	a, err := l.Acquire(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(1, 4); err != nil {
		t.Fatal(err)
	}
	almost(t, l.OutstandingFor(0), 3, 1e-12, "outstanding for 0")
	almost(t, l.OutstandingFor(1), 4, 1e-12, "outstanding for 1")
	if err := l.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	almost(t, l.OutstandingFor(0), 0, 1e-12, "after release")
}

func TestNewLedgerValidation(t *testing.T) {
	al, err := NewAllocator([][]float64{{0, 0}, {0, 0}}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLedger(al, []float64{-1, 2}); err == nil {
		t.Error("negative capacity accepted")
	}
}
