package core

import (
	"fmt"

	"repro/internal/lp"

	"repro/internal/num"
)

// Hierarchy implements the multi-grid refinement of Section 3.2 for
// hierarchical agreement structures: "once a request comes to a group and
// that group cannot satisfy it, we use LP to find the distribution of
// resources among groups; based on the distribution result, we run LP
// inside each group to further refine the allocation."
//
// The coarse grid aggregates each group into one pseudo-principal
// (capacity = group sum; inter-group share = average of member-to-member
// shares) and solves a small LP; the fine grid then solves one LP per
// contributing group, each over only that group's members. For g groups of
// size k this costs O(g³ + g·k³) simplex work instead of O((gk)³).
type Hierarchy struct {
	full   *Allocator
	groups [][]int
	of     []int // principal -> group index
	coarse *Allocator
	cfg    Config
}

// NewHierarchy builds a hierarchical planner over the full agreement
// matrices with the given disjoint groups covering all principals.
func NewHierarchy(s, a [][]float64, groups [][]int, cfg Config) (*Hierarchy, error) {
	full, err := NewAllocator(s, a, cfg)
	if err != nil {
		return nil, err
	}
	n := full.N()
	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}
	for g, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("core: NewHierarchy: group %d is empty", g)
		}
		for _, p := range members {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("core: NewHierarchy: group %d member %d out of range", g, p)
			}
			if of[p] != -1 {
				return nil, fmt.Errorf("core: NewHierarchy: principal %d in two groups", p)
			}
			of[p] = g
		}
	}
	for p, g := range of {
		if g == -1 {
			return nil, fmt.Errorf("core: NewHierarchy: principal %d not in any group", p)
		}
	}

	// Coarse matrices: average member-to-member share between groups.
	ng := len(groups)
	sg := make([][]float64, ng)
	var ag [][]float64
	if a != nil {
		ag = make([][]float64, ng)
	}
	for g := range groups {
		sg[g] = make([]float64, ng)
		if ag != nil {
			ag[g] = make([]float64, ng)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gi, gj := of[i], of[j]
			if gi == gj {
				continue
			}
			sg[gi][gj] += s[i][j] / float64(len(groups[gi]))
			if ag != nil {
				ag[gi][gj] += a[i][j]
			}
		}
	}
	for g := range sg {
		if sum := rowSum(sg[g]); sum > 1 {
			// Keep the coarse model conservative; the fine grid enforces
			// the real per-member caps anyway.
			for j := range sg[g] {
				sg[g][j] /= sum
			}
		}
	}
	coarse, err := NewAllocator(sg, ag, Config{Level: cfg.Level, Approx: cfg.Approx})
	if err != nil {
		return nil, fmt.Errorf("core: NewHierarchy: coarse allocator: %w", err)
	}
	return &Hierarchy{full: full, groups: groups, of: of, coarse: coarse, cfg: cfg}, nil
}

// Capacities reports the exact (full-matrix) capacities.
func (h *Hierarchy) Capacities(v []float64) []float64 { return h.full.Capacities(v) }

// Plan allocates using multi-grid refinement. If the requester's own group
// can satisfy the request it never leaves the group; otherwise the coarse
// LP splits the request across groups and a fine LP inside each
// contributing group picks the actual sources.
func (h *Hierarchy) Plan(v []float64, requester int, amount float64) (*Allocation, error) {
	h.full.checkV(v)
	if amount < 0 {
		return nil, fmt.Errorf("core: negative request %g", amount)
	}
	n := h.full.N()
	out := &Allocation{Take: make([]float64, n), NewV: append([]float64(nil), v...)}
	if num.IsZero(amount) {
		return out, nil
	}
	g := h.of[requester]

	// Fine-only fast path: can the home group cover the request?
	if h.groupHeadroom(v, g, requester) >= amount-1e-9 {
		if err := h.refineGroup(v, out, g, requester, amount); err != nil {
			return nil, err
		}
		out.Theta = h.full.realizedTheta(v, out.NewV, requester, h.full.Capacities(v), make([]float64, n))
		return out, nil
	}

	// Coarse grid: distribute the request across groups.
	// A group can export at most what the requester may reach inside it.
	vg := make([]float64, len(h.groups))
	var reachable float64
	for gi := range h.groups {
		vg[gi] = h.groupHeadroom(v, gi, requester)
		reachable += vg[gi]
	}
	if reachable < amount-1e-9 {
		return nil, fmt.Errorf("%w: groups can supply %g of requested %g", ErrInsufficient, reachable, amount)
	}
	groupTake, err := h.coarsePlan(vg, g, amount)
	if err != nil {
		return nil, fmt.Errorf("core: hierarchy coarse grid: %w", err)
	}

	// Fine grid: refine inside each contributing group.
	for gi := range h.groups {
		want := groupTake[gi]
		if want <= 1e-12 {
			continue
		}
		if err := h.refineGroup(v, out, gi, requester, want); err != nil {
			return nil, err
		}
	}
	out.Theta = h.full.realizedTheta(v, out.NewV, requester, h.full.Capacities(v), make([]float64, n))
	return out, nil
}

// coarsePlan distributes `amount` across groups: take_g ∈ [0, vg_g],
// Σ take = amount, minimizing the worst group-level capacity perturbation
// measured with the averaged inter-group coefficients. Take bounds use the
// exportable headroom directly (vg is already capped per member), so the
// averaged coefficients steer the objective without re-capping supply.
func (h *Hierarchy) coarsePlan(vg []float64, home int, amount float64) ([]float64, error) {
	ng := len(h.groups)
	kg := h.coarse.k
	m := lp.NewModel(lp.Minimize)
	take := make([]lp.VarID, ng)
	for gi := 0; gi < ng; gi++ {
		take[gi] = m.AddVar(fmt.Sprintf("take_g%d", gi), 0, vg[gi], 0)
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)
	terms := make([]lp.Term, ng)
	for gi := 0; gi < ng; gi++ {
		terms[gi] = lp.Term{Var: take[gi], Coeff: 1}
	}
	m.AddConstraint("consume", terms, lp.EQ, amount)
	for gi := 0; gi < ng; gi++ {
		if gi == home {
			continue
		}
		row := []lp.Term{{Var: theta, Coeff: -1}}
		for gk := 0; gk < ng; gk++ {
			coeff := kg[gk][gi]
			if gk == gi {
				coeff = 1
			}
			if !num.IsZero(coeff) {
				row = append(row, lp.Term{Var: take[gk], Coeff: coeff})
			}
		}
		m.AddConstraint(fmt.Sprintf("perturb_g%d", gi), row, lp.LE, 0)
	}
	sol, err := m.Solve()
	if err != nil {
		return nil, err
	}
	out := make([]float64, ng)
	for gi := range out {
		x := sol.Value(take[gi])
		if x < 0 {
			x = 0
		}
		if x > vg[gi] {
			x = vg[gi]
		}
		out[gi] = x
	}
	// Absorb round-off in the home group if possible.
	var sum float64
	for _, x := range out {
		sum += x
	}
	if resid := amount - sum; !num.IsZero(resid) && out[home]+resid >= 0 && out[home]+resid <= vg[home] {
		out[home] += resid
	}
	return out, nil
}

// groupHeadroom is the amount group g can supply toward the requester.
func (h *Hierarchy) groupHeadroom(v []float64, g, requester int) float64 {
	var sum float64
	for _, p := range h.groups[g] {
		if p == requester {
			sum += v[p]
		} else {
			sum += h.full.sourceCap(v, p, requester)
		}
	}
	return sum
}

// refineGroup solves the fine-grid LP over one group: take `amount` from
// its members, minimizing the worst member-capacity perturbation, honoring
// each member's agreement cap toward the requester. It updates out in
// place.
func (h *Hierarchy) refineGroup(v []float64, out *Allocation, g, requester int, amount float64) error {
	members := h.groups[g]
	if have := h.groupHeadroom(v, g, requester); have < amount-1e-9 {
		return fmt.Errorf("%w: group %d can supply %g of requested %g", ErrInsufficient, g, have, amount)
	}
	m := lp.NewModel(lp.Minimize)
	take := make([]lp.VarID, len(members))
	for idx, p := range members {
		cap := h.full.sourceCap(v, p, requester)
		if p == requester {
			cap = v[p]
		}
		take[idx] = m.AddVar(fmt.Sprintf("take_%d", p), 0, cap, 0)
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)
	terms := make([]lp.Term, len(members))
	for idx := range members {
		terms[idx] = lp.Term{Var: take[idx], Coeff: 1}
	}
	m.AddConstraint("consume", terms, lp.EQ, amount)
	// Perturbation of member i's capacity from takes inside this group:
	// ΔC_i = take_i + Σ_{k∈g, k≠i} K[k][i]·take_k  <=  θ.
	for _, i := range members {
		if i == requester {
			continue
		}
		row := []lp.Term{{Var: theta, Coeff: -1}}
		for idx, k := range members {
			coeff := h.full.k[k][i]
			if k == i {
				coeff = 1
			}
			if !num.IsZero(coeff) {
				row = append(row, lp.Term{Var: take[idx], Coeff: coeff})
			}
		}
		m.AddConstraint(fmt.Sprintf("perturb_%d", i), row, lp.LE, 0)
	}
	sol, err := m.Solve()
	if err != nil {
		return fmt.Errorf("core: hierarchy fine grid (group %d): %w", g, err)
	}
	for idx, p := range members {
		amt := sol.Value(take[idx])
		if amt < 0 {
			amt = 0
		}
		if amt > out.NewV[p] {
			amt = out.NewV[p]
		}
		out.Take[p] += amt
		out.NewV[p] -= amt
	}
	return nil
}

func rowSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

var _ Planner = (*Hierarchy)(nil)
