package transitive

import (
	"errors"
	"math/rand"
	"testing"
)

// randomSparse builds a random valid agreement matrix with roughly
// `edges` non-zero entries.
func randomSparse(rng *rand.Rand, n, edges int) [][]float64 {
	s := zeros(n)
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		s[i][j] = 0.05 + 0.4*rng.Float64()
	}
	return s
}

// requireBitEqual fails unless got and want hold identical values in
// every entry.
func requireBitEqual(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] { //lint:ignore sharingvet/floateq the test pins bit-identical results
				t.Fatalf("%s: [%d][%d] = %v, want %v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestClosureUpdateEdgeMatchesFull drives random edge-update schedules
// and pins the incremental closure bit-for-bit to a from-scratch
// recompute at every step, across both kernels (exact, approx), both row
// variants (n <= 64 bitmask, n > 64 big fallback), and several levels.
func TestClosureUpdateEdgeMatchesFull(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		edges  int
		level  int
		approx bool
	}{
		{"exact-small-full", 8, 14, 7, false},
		{"exact-small-level2", 8, 14, 2, false},
		{"exact-big-level4", 80, 160, 4, false},
		{"approx-small-full", 10, 25, 9, true},
		{"approx-big-level6", 70, 200, 6, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s := randomSparse(rng, tc.n, tc.edges)
			c := NewClosure(s, tc.level, tc.approx)
			for step := 0; step < 40; step++ {
				src, dst := rng.Intn(tc.n), rng.Intn(tc.n)
				if src == dst {
					continue
				}
				var nv float64
				switch rng.Intn(3) {
				case 0: // clear the edge
					nv = 0
				default:
					nv = 0.05 + 0.4*rng.Float64()
				}
				ov := s[src][dst]
				next, changed, err := c.UpdateEdge(src, dst, ov, nv)
				if err != nil {
					t.Fatalf("step %d: UpdateEdge(%d,%d,%v,%v): %v", step, src, dst, ov, nv, err)
				}
				s[src][dst] = nv
				var want [][]float64
				if tc.approx {
					want = Approx(s, tc.level)
				} else {
					want = Exact(s, tc.level)
				}
				requireBitEqual(t, next.T(), want, "incremental T")
				// Rows not reported as changed must be the previous rows.
				changedSet := map[int]bool{}
				for _, r := range changed {
					changedSet[r] = true
				}
				for i := 0; i < tc.n; i++ {
					if !changedSet[i] {
						requireBitEqual(t, [][]float64{next.T()[i]}, [][]float64{c.T()[i]}, "unchanged row drifted")
					}
				}
				c = next
			}
		})
	}
}

// TestClosureUpdateRowMatchesFull replaces whole rows and pins the
// result to the full recompute.
func TestClosureUpdateRowMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	s := randomSparse(rng, n, 30)
	c := NewClosure(s, n-1, false)
	for step := 0; step < 20; step++ {
		src := rng.Intn(n)
		row := make([]float64, n)
		for j := range row {
			if j != src && rng.Intn(3) == 0 {
				row[j] = 0.05 + 0.4*rng.Float64()
			}
		}
		next, _, err := c.UpdateRow(src, row)
		if err != nil {
			t.Fatalf("step %d: UpdateRow(%d): %v", step, src, err)
		}
		copy(s[src], row)
		requireBitEqual(t, next.T(), Exact(s, n-1), "incremental T after UpdateRow")
		c = next
	}
}

// TestClosureCOW checks that mutation leaves the receiver's matrix
// intact — the property the server's snapshot-solve concurrency needs.
func TestClosureCOW(t *testing.T) {
	s := [][]float64{
		{0, 0.5, 0},
		{0, 0, 0.5},
		{0, 0, 0},
	}
	c := NewClosure(s, 2, false)
	before := Exact(s, 2)
	next, changed, err := c.UpdateEdge(0, 1, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("expected changed rows")
	}
	requireBitEqual(t, c.T(), before, "receiver mutated by UpdateEdge")
	s[0][1] = 0.9
	requireBitEqual(t, next.T(), Exact(s, 2), "derived closure")
}

// TestClosureGrow pins zero-extension growth to a full rebuild, for both
// kernels, including the approx case where growing raises the clamped
// level of a full-transitivity request.
func TestClosureGrow(t *testing.T) {
	for _, approx := range []bool{false, true} {
		rng := rand.New(rand.NewSource(5))
		n := 9
		s := randomSparse(rng, n, 22)
		// 1<<20 requests full transitivity at any size, so the clamped
		// level rises as the closure grows.
		c := NewClosure(s, 1<<20, approx)
		grown := c.Grow(2)
		sg := growRows(s, n+2)
		var want [][]float64
		if approx {
			want = Approx(sg, 1<<20)
		} else {
			want = Exact(sg, 1<<20)
		}
		requireBitEqual(t, grown.T(), want, "grown closure")
		if grown.N() != n+2 {
			t.Fatalf("grown N = %d, want %d", grown.N(), n+2)
		}
		// The grown closure must keep working incrementally: connect a new
		// principal and recheck.
		next, _, err := grown.UpdateEdge(n, 0, 0, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		sg[n][0] = 0.3
		if approx {
			want = Approx(sg, 1<<20)
		} else {
			want = Exact(sg, 1<<20)
		}
		requireBitEqual(t, next.T(), want, "update after grow")
	}
}

// TestClosureBlastFallback forces the full-recompute fallback (a hub
// edge on a dense graph affects every row) and checks it still lands on
// the exact result with accurate changed-row reporting.
func TestClosureBlastFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 10
	s := zeros(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s[i][j] = 0.02 + 0.05*rng.Float64()
			}
		}
	}
	c := NewClosure(s, 3, false)
	next, changed, err := c.UpdateEdge(4, 7, s[4][7], 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.affected(4)); blastDenominator*got <= n {
		t.Fatalf("test graph too sparse: affected=%d of n=%d does not trip the fallback", got, n)
	}
	s[4][7] = 0.9
	requireBitEqual(t, next.T(), Exact(s, 3), "fallback T")
	changedSet := map[int]bool{}
	for _, r := range changed {
		changedSet[r] = true
	}
	for i := 0; i < n; i++ {
		same := true
		for j := 0; j < n; j++ {
			if next.T()[i][j] != c.T()[i][j] { //lint:ignore sharingvet/floateq bit-level row diff
				same = false
			}
		}
		if same == changedSet[i] {
			t.Fatalf("row %d: changed reporting wrong (same=%v, reported=%v)", i, same, changedSet[i])
		}
	}
}

// TestClosureUpdateEdgeErrors covers the validation and staleness
// errors, and the no-op path.
func TestClosureUpdateEdgeErrors(t *testing.T) {
	s := [][]float64{
		{0, 0.5},
		{0, 0},
	}
	c := NewClosure(s, 1, false)
	if _, _, err := c.UpdateEdge(0, 2, 0, 0.1); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, _, err := c.UpdateEdge(1, 1, 0, 0.1); err == nil {
		t.Fatal("diagonal update accepted")
	}
	if _, _, err := c.UpdateEdge(0, 1, 0.5, -0.1); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, _, err := c.UpdateEdge(0, 1, 0.4, 0.6); err == nil {
		t.Fatal("stale old value accepted")
	}
	next, changed, err := c.UpdateEdge(0, 1, 0.5, 0.5)
	if err != nil || next != c || changed != nil {
		t.Fatalf("no-op update: next=%p changed=%v err=%v, want receiver back", next, changed, err)
	}
	if _, _, err := c.UpdateRow(0, []float64{0.1, 0}); err == nil {
		t.Fatal("non-zero diagonal row accepted")
	}
	if _, _, err := c.UpdateRow(0, []float64{0}); err == nil {
		t.Fatal("short row accepted")
	}
}

// TestClosureBudget pins the ErrBudget refusal: a dense exact closure
// with a tiny step budget must refuse edge updates before recomputing,
// leaving the receiver usable, and accept them again once the budget is
// lifted.
func TestClosureBudget(t *testing.T) {
	const n = 9
	s := zeros(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s[i][j] = 0.1
			}
		}
	}
	c := NewClosure(s, n-1, false).WithBudget(50)
	_, _, err := c.UpdateEdge(0, 1, 0.1, 0.2)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("dense update under budget 50: err = %v, want ErrBudget", err)
	}
	// The receiver is untouched and still answers queries.
	if c.Edge(0, 1) != 0.1 { //lint:ignore sharingvet/floateq exact state check
		t.Fatalf("receiver mutated by refused update: edge = %v", c.Edge(0, 1))
	}
	// Lifting the budget lets the same mutation through.
	d, _, err := c.WithBudget(0).UpdateEdge(0, 1, 0.1, 0.2)
	if err != nil {
		t.Fatalf("unbounded update: %v", err)
	}
	want := NewClosure(d.DenseS(), n-1, false)
	requireBitEqual(t, d.T(), want.T(), "post-budget-lift closure")

	// A sparse graph with a generous budget must not trip.
	rng := rand.New(rand.NewSource(3))
	sp := randomSparse(rng, 12, 18)
	cs := NewClosure(sp, 4, false).WithBudget(1_000_000)
	if _, _, err := cs.UpdateEdge(1, 2, sp[1][2], 0.3); err != nil {
		t.Fatalf("sparse update under ample budget: %v", err)
	}
}
