package transitive

import (
	"math/rand"
	"testing"
)

// Ablation bench: exact simple-path enumeration vs the matrix-power
// approximation (DESIGN.md calls this choice out). Exact is exponential
// in dense graphs but exact; Approx is O(level·n³).

func benchMatrix(n int, density float64) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i != j && rng.Float64() < density {
				s[i][j] = rng.Float64() * 0.3
			}
		}
	}
	return s
}

func BenchmarkExactComplete10(b *testing.B) {
	s := benchMatrix(10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(s, 9)
	}
}

func BenchmarkExactComplete11(b *testing.B) {
	// Each added node multiplies the dense-graph path count by ~n; this
	// size is the practical ceiling for exact enumeration (~2 s/op).
	s := benchMatrix(11, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(s, 10)
	}
}

func BenchmarkExactSparse30(b *testing.B) {
	s := benchMatrix(30, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(s, 29)
	}
}

func BenchmarkApproxComplete10(b *testing.B) {
	s := benchMatrix(10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approx(s, 9)
	}
}

func BenchmarkApproxComplete100(b *testing.B) {
	s := benchMatrix(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approx(s, 99)
	}
}

func BenchmarkCapacities10(b *testing.B) {
	s := benchMatrix(10, 1)
	t := Cap(Exact(s, 9))
	v := make([]float64, 10)
	for i := range v {
		v[i] = float64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Capacities(v, t, nil)
	}
}
