package transitive

import (
	"math/rand"
	"testing"

	"repro/internal/num"
)

// exactRecursive is the original serial recursive enumeration, kept here
// verbatim as the reference the parallel iterative implementation is
// pinned against — the two must agree bit for bit, not just within
// tolerance.
func exactRecursive(s [][]float64, maxLen int) [][]float64 {
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	t := zeros(n)
	visited := make([]bool, n)

	var dfs func(src, cur int, depth int, product float64)
	dfs = func(src, cur, depth int, product float64) {
		if depth == maxLen {
			return
		}
		for next := 0; next < n; next++ {
			if visited[next] || num.IsZero(s[cur][next]) {
				continue
			}
			p := product * s[cur][next]
			t[src][next] += p
			visited[next] = true
			dfs(src, next, depth+1, p)
			visited[next] = false
		}
	}
	for src := 0; src < n; src++ {
		visited[src] = true
		dfs(src, src, 0, 1)
		visited[src] = false
	}
	return t
}

// approxSerial is the original single-threaded matrix-power sum.
func approxSerial(s [][]float64, maxLen int) [][]float64 {
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	sum := zeros(n)
	power := zeros(n)
	for i := range power {
		copy(power[i], s[i])
	}
	add(sum, power)
	next := zeros(n)
	for k := 2; k <= maxLen; k++ {
		matmulInto(next, power, s, 1)
		power, next = next, power
		add(sum, power)
	}
	return sum
}

// randomGraph builds an n-principal agreement matrix where each off-
// diagonal edge exists with probability density and carries a random
// fraction.
func randomGraph(rng *rand.Rand, n int, density float64) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i != j && rng.Float64() < density {
				s[i][j] = rng.Float64()
			}
		}
	}
	return s
}

func requireBitIdentical(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: [%d][%d] = %v, serial reference %v (not bit-identical)",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestExactParallelMatchesSerial pins the parallel iterative DFS to the
// recursive reference on randomized graphs across sizes (crossing the
// n=64 bitmask/bool-slice boundary), densities, levels and worker counts.
func TestExactParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 9, 12, 66} {
		for _, density := range []float64{0.15, 0.5, 1.0} {
			s := randomGraph(rng, n, density)
			// Full closure only at small n: simple-path enumeration is
			// exponential in the chain length, and these graphs are dense.
			levels := []int{1, 2, 3}
			if n <= 9 {
				levels = append(levels, n-1)
			}
			for _, level := range levels {
				want := exactRecursive(s, level)
				for _, workers := range []int{1, 2, 4, 8} {
					got := exactWorkers(s, level, workers)
					requireBitIdentical(t, got, want, "Exact")
				}
				requireBitIdentical(t, Exact(s, level), want, "Exact(default)")
			}
		}
	}
}

// TestExactParallelPaperGraph is the acceptance case: the paper's
// 10-principal complete graph at full transitive closure.
func TestExactParallelPaperGraph(t *testing.T) {
	n := 10
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i != j {
				s[i][j] = 0.1
			}
		}
	}
	want := exactRecursive(s, n-1)
	for _, workers := range []int{1, 2, 4} {
		requireBitIdentical(t, exactWorkers(s, n-1, workers), want, "Exact(complete10)")
	}
}

func TestApproxParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 10, 40} {
		s := randomGraph(rng, n, 0.4)
		for _, level := range []int{1, 2, n - 1} {
			want := approxSerial(s, level)
			for _, workers := range []int{1, 2, 4, 8} {
				got := approxWorkers(s, level, workers)
				requireBitIdentical(t, got, want, "Approx")
			}
			requireBitIdentical(t, Approx(s, level), want, "Approx(default)")
		}
	}
}

func TestCapacitiesIntoMatchesCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomGraph(rng, 12, 0.5)
	tm := Approx(s, 3)
	a := randomGraph(rng, 12, 0.2)
	v := make([]float64, 12)
	for i := range v {
		v[i] = rng.Float64() * 100
	}
	want := Capacities(v, tm, a)
	got := make([]float64, 12)
	CapacitiesInto(got, v, tm, a)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CapacitiesInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
