// Package transitive computes the transitive availability of resources
// through chained sharing agreements (Section 3.1 of the paper).
//
// Given the relative agreement matrix S (S[i][j] = fraction of principal
// i's resources shared with j), the flow coefficient
//
//	T_ij^(m) = Σ over cycle-free chains i -> k1 -> ... -> j of length <= m
//	           of S[i][k1]·S[k1][k2]·...·S[k_{m-1}][j]
//
// determines the resource amount I_ij = V_i · T_ij that principal i's
// capacity contributes to principal j. The chain constraint (all nodes
// distinct) makes exact computation a simple-path enumeration, which this
// package performs by depth-first search — exact and fast for the paper's
// scales (n around 10–20). An Approx variant uses plain matrix powers,
// which overcounts cycles but scales polynomially; the two agree on
// cycle-free graphs and Approx is always an upper bound.
//
// The package also implements the two extensions of Section 3.2:
//
//   - overdraft capping K_ij = min(T_ij, 1), used when the Σ_k S_ik <= 1
//     restriction is lifted, so nobody can receive more than a source owns;
//   - the absolute-agreement cap U_ki = min(I_ki + A_ki, V_k) and the
//     resulting capacity C_i = V_i + Σ_{k≠i} U_ki.
package transitive

import (
	"fmt"

	"repro/internal/num"
	"repro/internal/par"
)

// Validate checks that S is a square agreement matrix with a zero
// diagonal and non-negative entries. It does NOT enforce row sums <= 1;
// the paper's overdraft extension deliberately lifts that restriction and
// capping handles it.
func Validate(s [][]float64) error {
	n := len(s)
	for i, row := range s {
		if len(row) != n {
			return fmt.Errorf("transitive: S is not square: row %d has %d entries, want %d", i, len(row), n)
		}
		if !num.IsZero(row[i]) {
			return fmt.Errorf("transitive: S[%d][%d] = %g, diagonal must be zero", i, i, row[i])
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("transitive: S[%d][%d] = %g, entries must be non-negative", i, j, v)
			}
		}
	}
	return nil
}

// Exact computes the flow-coefficient matrix T^(maxLen) by enumerating
// every cycle-free agreement chain of at most maxLen edges. maxLen is the
// paper's "level of transitivity": 1 enforces only direct agreements, and
// n-1 is the full transitive closure. Values of maxLen < 1 or > n-1 are
// clamped. Exact panics if Validate(s) fails; validate untrusted input
// first.
//
// The enumeration runs one iterative DFS per source row; rows are
// independent and are distributed over a pool of GOMAXPROCS workers. Each
// row is computed in exactly the order the serial DFS would use, so the
// result is bit-for-bit identical regardless of the worker count.
func Exact(s [][]float64, maxLen int) [][]float64 {
	return exactWorkers(s, maxLen, par.Workers(len(s)))
}

// exactWorkers is Exact with an explicit worker count (tests pin it to
// compare serial and parallel runs on any machine).
func exactWorkers(s [][]float64, maxLen, workers int) [][]float64 {
	if err := Validate(s); err != nil {
		panic(err)
	}
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	t := zeros(n)
	adj, vals, edges := adjacency(s)
	// On dense graphs a straight 0..n-1 scan with a zero test beats the
	// adjacency indirection; on sparse graphs the edge lists skip the
	// zeros entirely. Either scan visits the same non-zero edges in the
	// same ascending order, so the choice never changes the result.
	dense := 2*edges >= n*n
	par.Do(n, workers, func(src int) {
		exactRow(s, adj, vals, src, maxLen, t[src], dense)
	})
	return t
}

// ExactCSR is Exact over a CSR agreement matrix: adj holds each row's
// ascending non-zero column indices and vals the matching values. The
// sparse kernels visit the same non-zero edges in the same ascending
// order as the dense scan, so the result is bit-identical to
// Exact(dense(adj, vals), maxLen). Rows may be nil (no out-edges).
// Diagonal or negative entries panic, mirroring Validate.
func ExactCSR(n int, adj [][]int32, vals [][]float64, maxLen int) [][]float64 {
	return exactWorkersCSR(n, adj, vals, maxLen, par.Workers(n))
}

func exactWorkersCSR(n int, adj [][]int32, vals [][]float64, maxLen, workers int) [][]float64 {
	if err := validateCSR(n, adj, vals); err != nil {
		panic(err)
	}
	maxLen = clampLevel(maxLen, n)
	t := zeros(n)
	par.Do(n, workers, func(src int) {
		exactRowCSR(n, adj, vals, src, maxLen, t[src])
	})
	return t
}

// validateCSR is Validate for CSR rows: square shape is implied, so only
// the zero diagonal and non-negative entries need checking.
func validateCSR(n int, adj [][]int32, vals [][]float64) error {
	if len(adj) != n || len(vals) != n {
		return fmt.Errorf("transitive: CSR has %d/%d rows, want %d", len(adj), len(vals), n)
	}
	for i := 0; i < n; i++ {
		if len(adj[i]) != len(vals[i]) {
			return fmt.Errorf("transitive: CSR row %d has %d cols but %d vals", i, len(adj[i]), len(vals[i]))
		}
		for k, j := range adj[i] {
			if int(j) == i && !num.IsZero(vals[i][k]) {
				return fmt.Errorf("transitive: S[%d][%d] = %g, diagonal must be zero", i, i, vals[i][k])
			}
			if vals[i][k] < 0 {
				return fmt.Errorf("transitive: S[%d][%d] = %g, entries must be non-negative", i, j, vals[i][k])
			}
		}
	}
	return nil
}

// adjacency returns, per node, the ascending list of non-zero out-edges
// with the matching edge values, plus the total edge count. The DFS
// iterates lists in index order, matching the dense j-loop order of the
// definition (zero entries contribute nothing).
func adjacency(s [][]float64) (adj [][]int32, vals [][]float64, edges int) {
	adj = make([][]int32, len(s))
	vals = make([][]float64, len(s))
	for i, row := range s {
		var out []int32
		var ov []float64
		for j, v := range row {
			if !num.IsZero(v) {
				out = append(out, int32(j))
				ov = append(ov, v)
			}
		}
		adj[i], vals[i] = out, ov
		edges += len(out)
	}
	return adj, vals, edges
}

// exactRow enumerates every cycle-free chain out of src, accumulating the
// chain products into row (row[j] += product for a chain ending at j).
// The recursion of the definition is unrolled onto an explicit stack with
// the hot frame held in locals; the visited set is a uint64 bitmask for
// n <= 64 (which also bounds the stack, so it lives entirely on the
// goroutine stack) and a bool slice above that. Visit order — and
// therefore floating-point summation order — is identical to the
// recursive formulation's.
func exactRow(s [][]float64, adj [][]int32, vals [][]float64, src, maxLen int, row []float64, dense bool) {
	switch {
	case len(s) > 64:
		exactRowBig(len(s), adj, vals, src, maxLen, row)
	case dense:
		exactRowDense64(s, src, maxLen, row)
	default:
		exactRowSparse64(adj, vals, src, maxLen, row)
	}
}

// exactRowCSR dispatches the sparse kernels when no dense matrix exists.
func exactRowCSR(n int, adj [][]int32, vals [][]float64, src, maxLen int, row []float64) {
	if n > 64 {
		exactRowBig(n, adj, vals, src, maxLen, row)
	} else {
		exactRowSparse64(adj, vals, src, maxLen, row)
	}
}

// exactRowDense64 is the n <= 64 bitmask variant scanning full matrix
// rows. depth counts edges already on the chain; the saved stacks hold
// the suspended ancestor frames.
func exactRowDense64(s [][]float64, src, maxLen int, row []float64) {
	n := int32(len(s))
	var (
		nodeStk [64]int32
		idxStk  [64]int32
		prodStk [64]float64
	)
	node, idx, product, depth := int32(src), int32(0), 1.0, 0
	visited := uint64(1) << src
	srow := s[node]
outer:
	for {
		if depth < maxLen {
			for idx < n {
				next := idx
				idx++
				if visited&(1<<next) != 0 || num.IsZero(srow[next]) {
					continue
				}
				p := product * srow[next]
				row[next] += p
				visited |= 1 << next
				nodeStk[depth], idxStk[depth], prodStk[depth] = node, idx, product
				depth++
				node, idx, product = next, 0, p
				srow = s[node]
				continue outer
			}
		}
		if depth == 0 {
			return
		}
		visited &^= 1 << node
		depth--
		node, idx, product = nodeStk[depth], idxStk[depth], prodStk[depth]
		srow = s[node]
	}
}

// exactRowSparse64 is the n <= 64 bitmask variant walking adjacency
// lists, skipping zero edges entirely. Edge values come from the vals
// lists aligned with adj — the same floats a dense row lookup would
// read, multiplied in the same order.
func exactRowSparse64(adj [][]int32, vals [][]float64, src, maxLen int, row []float64) {
	var (
		nodeStk [64]int32
		idxStk  [64]int32
		prodStk [64]float64
	)
	node, idx, product, depth := int32(src), int32(0), 1.0, 0
	visited := uint64(1) << src
	edges := adj[node]
	vrow := vals[node]
outer:
	for {
		if depth < maxLen {
			for int(idx) < len(edges) {
				next := edges[idx]
				v := vrow[idx]
				idx++
				if visited&(1<<next) != 0 {
					continue
				}
				p := product * v
				row[next] += p
				visited |= 1 << next
				nodeStk[depth], idxStk[depth], prodStk[depth] = node, idx, product
				depth++
				node, idx, product = next, 0, p
				edges, vrow = adj[node], vals[node]
				continue outer
			}
		}
		if depth == 0 {
			return
		}
		visited &^= 1 << node
		depth--
		node, idx, product = nodeStk[depth], idxStk[depth], prodStk[depth]
		edges, vrow = adj[node], vals[node]
	}
}

// exactRowBig is the bool-slice fallback for n > 64 (adjacency walk; a
// dense graph that large is out of Exact's reach anyway).
func exactRowBig(n int, adj [][]int32, vals [][]float64, src, maxLen int, row []float64) {
	nodeStk := make([]int32, maxLen+1)
	idxStk := make([]int32, maxLen+1)
	prodStk := make([]float64, maxLen+1)
	visited := make([]bool, n)
	node, idx, product, depth := int32(src), int32(0), 1.0, 0
	visited[src] = true
	edges := adj[node]
	vrow := vals[node]
outer:
	for {
		if depth < maxLen {
			for int(idx) < len(edges) {
				next := edges[idx]
				v := vrow[idx]
				idx++
				if visited[next] {
					continue
				}
				p := product * v
				row[next] += p
				visited[next] = true
				nodeStk[depth], idxStk[depth], prodStk[depth] = node, idx, product
				depth++
				node, idx, product = next, 0, p
				edges, vrow = adj[node], vals[node]
				continue outer
			}
		}
		if depth == 0 {
			return
		}
		visited[node] = false
		depth--
		node, idx, product = nodeStk[depth], idxStk[depth], prodStk[depth]
		edges, vrow = adj[node], vals[node]
	}
}

// Approx computes Σ_{k=1..maxLen} S^k — the matrix-power approximation of
// T^(maxLen). It counts walks rather than simple paths, so on cyclic
// graphs it overcounts (it is an upper bound on Exact); on DAGs the two
// are identical. Cost is O(maxLen · n³), with each multiply parallelized
// over row blocks (rows are independent, so the result is bit-for-bit
// identical to a serial multiply). Approx panics if Validate(s) fails.
func Approx(s [][]float64, maxLen int) [][]float64 {
	return approxWorkers(s, maxLen, par.Workers(len(s)))
}

// approxWorkers is Approx with an explicit worker count (pinned by tests).
func approxWorkers(s [][]float64, maxLen, workers int) [][]float64 {
	if err := Validate(s); err != nil {
		panic(err)
	}
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	sum := zeros(n)
	power := zeros(n)
	for i := range power {
		copy(power[i], s[i])
	}
	add(sum, power)
	next := zeros(n) // double buffer: matmul reads power, writes next
	for k := 2; k <= maxLen; k++ {
		matmulInto(next, power, s, workers)
		power, next = next, power
		add(sum, power)
	}
	return sum
}

// ApproxCSR is Approx over a CSR agreement matrix. Skipping a zero
// column of S in the multiply drops only exact `+= aik·0` terms, so the
// result is bit-identical to Approx on the dense export.
func ApproxCSR(n int, adj [][]int32, vals [][]float64, maxLen int) [][]float64 {
	return approxWorkersCSR(n, adj, vals, maxLen, par.Workers(n))
}

func approxWorkersCSR(n int, adj [][]int32, vals [][]float64, maxLen, workers int) [][]float64 {
	if err := validateCSR(n, adj, vals); err != nil {
		panic(err)
	}
	maxLen = clampLevel(maxLen, n)
	sum := zeros(n)
	power := zeros(n)
	for i := 0; i < n; i++ {
		for k, j := range adj[i] {
			power[i][j] = vals[i][k]
		}
	}
	add(sum, power)
	next := zeros(n) // double buffer: matmul reads power, writes next
	for k := 2; k <= maxLen; k++ {
		matmulIntoCSR(next, power, adj, vals, workers)
		power, next = next, power
		add(sum, power)
	}
	return sum
}

// matmulIntoCSR computes out = a·S with S in CSR form, replicating
// matmulInto's per-row operation order (ascending k, ascending j over
// the non-zero columns). out must not alias a.
func matmulIntoCSR(out, a [][]float64, badj [][]int32, bvals [][]float64, workers int) {
	n := len(a)
	par.Do(n, workers, func(i int) {
		row := out[i]
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if num.IsZero(aik) {
				continue
			}
			cols, vs := badj[k], bvals[k]
			for idx, j := range cols {
				row[j] += aik * vs[idx]
			}
		}
	})
}

// Cap applies the overdraft rule of Section 3.2: K_ij = min(T_ij, 1). The
// input is not modified.
func Cap(t [][]float64) [][]float64 {
	out := zeros(len(t))
	for i, row := range t {
		for j, v := range row {
			if v > 1 {
				v = 1
			}
			out[i][j] = v
		}
	}
	return out
}

// Flows returns I[i][j] = V[i] · T[i][j], the amount of principal i's
// capacity available to principal j through chained agreements.
func Flows(v []float64, t [][]float64) [][]float64 {
	if len(v) != len(t) {
		panic(fmt.Sprintf("transitive: Flows: %d capacities for %d×%d T", len(v), len(t), len(t)))
	}
	out := zeros(len(t))
	for i, row := range t {
		for j, tij := range row {
			out[i][j] = v[i] * tij
		}
	}
	return out
}

// SourceCaps returns the matrix U of Section 3.2:
//
//	U[k][i] = min(I_ki + A_ki, V_k)
//
// the amount of principal k's capacity usable by principal i, combining
// relative flows and absolute agreements but never exceeding what k owns.
// A may be nil, meaning no absolute agreements.
func SourceCaps(v []float64, t, a [][]float64) [][]float64 {
	n := len(v)
	if len(t) != n || (a != nil && len(a) != n) {
		panic(fmt.Sprintf("transitive: SourceCaps: inconsistent sizes V=%d T=%d A=%d", n, len(t), len(a)))
	}
	out := zeros(n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if k == i {
				continue
			}
			out[k][i] = sourceCap(v, t, a, k, i)
		}
	}
	return out
}

// sourceCap returns U_ki = min(V_k·T_ki + A_ki, V_k) for k != i.
func sourceCap(v []float64, t, a [][]float64, k, i int) float64 {
	u := v[k] * t[k][i]
	if a != nil {
		u += a[k][i]
	}
	if u > v[k] {
		u = v[k]
	}
	return u
}

// Capacities returns C_i = V_i + Σ_{k≠i} U_ki: the total resource amount
// available to each principal, directly and transitively. A may be nil.
func Capacities(v []float64, t, a [][]float64) []float64 {
	out := make([]float64, len(v))
	CapacitiesInto(out, v, t, a)
	return out
}

// CapacitiesInto computes Capacities into dst (len(v) entries) without
// allocating: the U entries are accumulated on the fly instead of being
// materialized as a matrix. The summation order matches Capacities', so
// the results are bit-for-bit identical. It is the enforcement hot path's
// entry point — Plan recomputes capacities twice per request (before and
// after the candidate allocation).
func CapacitiesInto(dst, v []float64, t, a [][]float64) {
	n := len(v)
	if len(t) != n || (a != nil && len(a) != n) || len(dst) != n {
		panic(fmt.Sprintf("transitive: CapacitiesInto: inconsistent sizes dst=%d V=%d T=%d A=%d", len(dst), n, len(t), len(a)))
	}
	for i := 0; i < n; i++ {
		c := v[i]
		for k := 0; k < n; k++ {
			if k != i {
				c += sourceCap(v, t, a, k, i)
			}
		}
		dst[i] = c
	}
}

// WithinBudget reports whether exact enumeration of cycle-free chains up
// to maxLen would perform at most `budget` DFS steps. It runs the same
// traversal as Exact but only counts, aborting as soon as the budget is
// exceeded, so its own cost is bounded by the budget. Callers use it to
// fail fast (suggesting Approx) instead of launching an astronomically
// exponential enumeration on a dense graph.
func WithinBudget(s [][]float64, maxLen int, budget int) bool {
	if err := Validate(s); err != nil {
		panic(err)
	}
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	visited := make([]bool, n)
	steps := 0

	var dfs func(cur, depth int) bool
	dfs = func(cur, depth int) bool {
		if depth == maxLen {
			return true
		}
		for next := 0; next < n; next++ {
			if visited[next] || num.IsZero(s[cur][next]) {
				continue
			}
			steps++
			if steps > budget {
				return false
			}
			visited[next] = true
			ok := dfs(next, depth+1)
			visited[next] = false
			if !ok {
				return false
			}
		}
		return true
	}
	for src := 0; src < n; src++ {
		visited[src] = true
		ok := dfs(src, 0)
		visited[src] = false
		if !ok {
			return false
		}
	}
	return true
}

// WithinBudgetCSR is WithinBudget over CSR rows (ascending columns with
// aligned values): the same counting DFS, visiting the same nonzero
// edges in the same order as the dense scan.
func WithinBudgetCSR(n int, adj [][]int32, vals [][]float64, maxLen int, budget int) bool {
	if err := validateCSR(n, adj, vals); err != nil {
		panic(err)
	}
	maxLen = clampLevel(maxLen, n)
	visited := make([]bool, n)
	steps := 0

	var dfs func(cur, depth int) bool
	dfs = func(cur, depth int) bool {
		if depth == maxLen {
			return true
		}
		row, vrow := adj[cur], vals[cur]
		for x, next := range row {
			if visited[next] || num.IsZero(vrow[x]) {
				continue
			}
			steps++
			if steps > budget {
				return false
			}
			visited[next] = true
			ok := dfs(int(next), depth+1)
			visited[next] = false
			if !ok {
				return false
			}
		}
		return true
	}
	for src := 0; src < n; src++ {
		visited[src] = true
		ok := dfs(src, 0)
		visited[src] = false
		if !ok {
			return false
		}
	}
	return true
}

func clampLevel(level, n int) int {
	if level < 1 {
		return 1
	}
	if level > n-1 {
		if n <= 1 {
			return 1
		}
		return n - 1
	}
	return level
}

func zeros(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

func add(dst, src [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += src[i][j]
		}
	}
}

// matmulInto computes out = a·b, distributing rows over the worker pool.
// Each out row depends only on one a row, so the parallel result is
// identical to a serial multiply. out must not alias a or b.
func matmulInto(out, a, b [][]float64, workers int) {
	n := len(a)
	par.Do(n, workers, func(i int) {
		row := out[i]
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if num.IsZero(aik) {
				continue
			}
			bk := b[k]
			for j := 0; j < n; j++ {
				row[j] += aik * bk[j]
			}
		}
	})
}
