// Package transitive computes the transitive availability of resources
// through chained sharing agreements (Section 3.1 of the paper).
//
// Given the relative agreement matrix S (S[i][j] = fraction of principal
// i's resources shared with j), the flow coefficient
//
//	T_ij^(m) = Σ over cycle-free chains i -> k1 -> ... -> j of length <= m
//	           of S[i][k1]·S[k1][k2]·...·S[k_{m-1}][j]
//
// determines the resource amount I_ij = V_i · T_ij that principal i's
// capacity contributes to principal j. The chain constraint (all nodes
// distinct) makes exact computation a simple-path enumeration, which this
// package performs by depth-first search — exact and fast for the paper's
// scales (n around 10–20). An Approx variant uses plain matrix powers,
// which overcounts cycles but scales polynomially; the two agree on
// cycle-free graphs and Approx is always an upper bound.
//
// The package also implements the two extensions of Section 3.2:
//
//   - overdraft capping K_ij = min(T_ij, 1), used when the Σ_k S_ik <= 1
//     restriction is lifted, so nobody can receive more than a source owns;
//   - the absolute-agreement cap U_ki = min(I_ki + A_ki, V_k) and the
//     resulting capacity C_i = V_i + Σ_{k≠i} U_ki.
package transitive

import (
	"fmt"

	"repro/internal/num"
)

// Validate checks that S is a square agreement matrix with a zero
// diagonal and non-negative entries. It does NOT enforce row sums <= 1;
// the paper's overdraft extension deliberately lifts that restriction and
// capping handles it.
func Validate(s [][]float64) error {
	n := len(s)
	for i, row := range s {
		if len(row) != n {
			return fmt.Errorf("transitive: S is not square: row %d has %d entries, want %d", i, len(row), n)
		}
		if !num.IsZero(row[i]) {
			return fmt.Errorf("transitive: S[%d][%d] = %g, diagonal must be zero", i, i, row[i])
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("transitive: S[%d][%d] = %g, entries must be non-negative", i, j, v)
			}
		}
	}
	return nil
}

// Exact computes the flow-coefficient matrix T^(maxLen) by enumerating
// every cycle-free agreement chain of at most maxLen edges. maxLen is the
// paper's "level of transitivity": 1 enforces only direct agreements, and
// n-1 is the full transitive closure. Values of maxLen < 1 or > n-1 are
// clamped. Exact panics if Validate(s) fails; validate untrusted input
// first.
func Exact(s [][]float64, maxLen int) [][]float64 {
	if err := Validate(s); err != nil {
		panic(err)
	}
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	t := zeros(n)
	visited := make([]bool, n)

	var dfs func(src, cur int, depth int, product float64)
	dfs = func(src, cur, depth int, product float64) {
		if depth == maxLen {
			return
		}
		for next := 0; next < n; next++ {
			if visited[next] || num.IsZero(s[cur][next]) {
				continue
			}
			p := product * s[cur][next]
			t[src][next] += p
			visited[next] = true
			dfs(src, next, depth+1, p)
			visited[next] = false
		}
	}
	for src := 0; src < n; src++ {
		visited[src] = true
		dfs(src, src, 0, 1)
		visited[src] = false
	}
	return t
}

// Approx computes Σ_{k=1..maxLen} S^k — the matrix-power approximation of
// T^(maxLen). It counts walks rather than simple paths, so on cyclic
// graphs it overcounts (it is an upper bound on Exact); on DAGs the two
// are identical. Cost is O(maxLen · n³). Approx panics if Validate(s)
// fails.
func Approx(s [][]float64, maxLen int) [][]float64 {
	if err := Validate(s); err != nil {
		panic(err)
	}
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	sum := zeros(n)
	power := zeros(n)
	for i := range power {
		copy(power[i], s[i])
	}
	add(sum, power)
	for k := 2; k <= maxLen; k++ {
		power = matmul(power, s)
		add(sum, power)
	}
	return sum
}

// Cap applies the overdraft rule of Section 3.2: K_ij = min(T_ij, 1). The
// input is not modified.
func Cap(t [][]float64) [][]float64 {
	out := zeros(len(t))
	for i, row := range t {
		for j, v := range row {
			if v > 1 {
				v = 1
			}
			out[i][j] = v
		}
	}
	return out
}

// Flows returns I[i][j] = V[i] · T[i][j], the amount of principal i's
// capacity available to principal j through chained agreements.
func Flows(v []float64, t [][]float64) [][]float64 {
	if len(v) != len(t) {
		panic(fmt.Sprintf("transitive: Flows: %d capacities for %d×%d T", len(v), len(t), len(t)))
	}
	out := zeros(len(t))
	for i, row := range t {
		for j, tij := range row {
			out[i][j] = v[i] * tij
		}
	}
	return out
}

// SourceCaps returns the matrix U of Section 3.2:
//
//	U[k][i] = min(I_ki + A_ki, V_k)
//
// the amount of principal k's capacity usable by principal i, combining
// relative flows and absolute agreements but never exceeding what k owns.
// A may be nil, meaning no absolute agreements.
func SourceCaps(v []float64, t, a [][]float64) [][]float64 {
	n := len(v)
	if len(t) != n || (a != nil && len(a) != n) {
		panic(fmt.Sprintf("transitive: SourceCaps: inconsistent sizes V=%d T=%d A=%d", n, len(t), len(a)))
	}
	out := zeros(n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if k == i {
				continue
			}
			u := v[k] * t[k][i]
			if a != nil {
				u += a[k][i]
			}
			if u > v[k] {
				u = v[k]
			}
			out[k][i] = u
		}
	}
	return out
}

// Capacities returns C_i = V_i + Σ_{k≠i} U_ki: the total resource amount
// available to each principal, directly and transitively. A may be nil.
func Capacities(v []float64, t, a [][]float64) []float64 {
	u := SourceCaps(v, t, a)
	out := make([]float64, len(v))
	for i := range v {
		c := v[i]
		for k := range v {
			if k != i {
				c += u[k][i]
			}
		}
		out[i] = c
	}
	return out
}

// WithinBudget reports whether exact enumeration of cycle-free chains up
// to maxLen would perform at most `budget` DFS steps. It runs the same
// traversal as Exact but only counts, aborting as soon as the budget is
// exceeded, so its own cost is bounded by the budget. Callers use it to
// fail fast (suggesting Approx) instead of launching an astronomically
// exponential enumeration on a dense graph.
func WithinBudget(s [][]float64, maxLen int, budget int) bool {
	if err := Validate(s); err != nil {
		panic(err)
	}
	n := len(s)
	maxLen = clampLevel(maxLen, n)
	visited := make([]bool, n)
	steps := 0

	var dfs func(cur, depth int) bool
	dfs = func(cur, depth int) bool {
		if depth == maxLen {
			return true
		}
		for next := 0; next < n; next++ {
			if visited[next] || num.IsZero(s[cur][next]) {
				continue
			}
			steps++
			if steps > budget {
				return false
			}
			visited[next] = true
			ok := dfs(next, depth+1)
			visited[next] = false
			if !ok {
				return false
			}
		}
		return true
	}
	for src := 0; src < n; src++ {
		visited[src] = true
		ok := dfs(src, 0)
		visited[src] = false
		if !ok {
			return false
		}
	}
	return true
}

func clampLevel(level, n int) int {
	if level < 1 {
		return 1
	}
	if level > n-1 {
		if n <= 1 {
			return 1
		}
		return n - 1
	}
	return level
}

func zeros(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

func add(dst, src [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += src[i][j]
		}
	}
}

func matmul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := zeros(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i][k]
			if num.IsZero(aik) {
				continue
			}
			row := b[k]
			for j := 0; j < n; j++ {
				out[i][j] += aik * row[j]
			}
		}
	}
	return out
}
