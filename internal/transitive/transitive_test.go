package transitive

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

func TestValidate(t *testing.T) {
	ok := [][]float64{{0, 0.3}, {0.2, 0}}
	if err := Validate(ok); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	bad := [][][]float64{
		{{0, 0.3}},                 // not square
		{{0.1, 0.3}, {0.2, 0}},     // diagonal
		{{0, -0.3}, {0.2, 0}},      // negative
		{{0, 0.3, 0}, {0.2, 0, 0}}, // ragged
	}
	for i, s := range bad {
		if err := Validate(s); err == nil {
			t.Errorf("case %d: invalid matrix accepted", i)
		}
	}
}

func TestExactTwoNodeChain(t *testing.T) {
	// 0 -> 1 at 30%: T[0][1] = 0.3 at every level, T[1][0] = 0.
	s := [][]float64{{0, 0.3}, {0, 0}}
	tm := Exact(s, 1)
	almost(t, tm[0][1], 0.3, 1e-12, "T[0][1]")
	almost(t, tm[1][0], 0, 1e-12, "T[1][0]")
}

func TestExactThreeNodeChainLevels(t *testing.T) {
	// 0 -> 1 (50%), 1 -> 2 (40%).
	s := [][]float64{
		{0, 0.5, 0},
		{0, 0, 0.4},
		{0, 0, 0},
	}
	lvl1 := Exact(s, 1)
	almost(t, lvl1[0][2], 0, 1e-12, "level-1 T[0][2]")
	lvl2 := Exact(s, 2)
	almost(t, lvl2[0][2], 0.2, 1e-12, "level-2 T[0][2]")
	almost(t, lvl2[0][1], 0.5, 1e-12, "level-2 T[0][1]")
}

func TestExactPaperOverdraftExample(t *testing.T) {
	// Section 3.2: A shares 60% with B and 60% with C; B shares 100% with
	// C. A owns 10. Uncapped T[A][C] = 0.6 + 0.6 = 1.2; capped K = 1, so C
	// can obtain 10 rather than 12.
	s := [][]float64{
		{0, 0.6, 0.6},
		{0, 0, 1.0},
		{0, 0, 0},
	}
	tm := Exact(s, 2)
	almost(t, tm[0][2], 1.2, 1e-12, "T[A][C]")
	k := Cap(tm)
	almost(t, k[0][2], 1.0, 1e-12, "K[A][C]")
	v := []float64{10, 0, 0}
	c := Capacities(v, k, nil)
	almost(t, c[2], 10, 1e-12, "C capacity with cap")
	cUncapped := Capacities(v, tm, nil)
	// Even uncapped, SourceCaps clamps at V_k = 10.
	almost(t, cUncapped[2], 10, 1e-12, "C capacity clamped by V_k")
}

func TestExactCycleExcluded(t *testing.T) {
	// Two-node mutual agreement: chains cannot revisit the source, so
	// T[0][1] is exactly S[0][1] at any level.
	s := [][]float64{{0, 0.5}, {0.5, 0}}
	tm := Exact(s, 5)
	almost(t, tm[0][1], 0.5, 1e-12, "T[0][1]")
	almost(t, tm[1][0], 0.5, 1e-12, "T[1][0]")
}

func TestExactLoopStructure(t *testing.T) {
	// Ring of 4, each sharing 80% with the next.
	n := 4
	s := ring(n, 0.8)
	lvl1 := Exact(s, 1)
	almost(t, lvl1[0][1], 0.8, 1e-12, "level-1 next")
	almost(t, lvl1[0][2], 0, 1e-12, "level-1 two hops")
	lvl3 := Exact(s, 3)
	almost(t, lvl3[0][1], 0.8, 1e-12, "level-3 next")
	almost(t, lvl3[0][2], 0.64, 1e-12, "level-3 two hops")
	almost(t, lvl3[0][3], 0.512, 1e-12, "level-3 three hops")
	// No wrap-around: the chain 0->1->2->3->0 would revisit 0.
	almost(t, lvl3[0][0], 0, 1e-12, "self flow")
}

func TestApproxEqualsExactOnDAG(t *testing.T) {
	s := [][]float64{
		{0, 0.5, 0.2, 0},
		{0, 0, 0.3, 0.1},
		{0, 0, 0, 0.7},
		{0, 0, 0, 0},
	}
	for level := 1; level <= 3; level++ {
		e := Exact(s, level)
		a := Approx(s, level)
		for i := range e {
			for j := range e[i] {
				almost(t, a[i][j], e[i][j], 1e-12, "DAG approx vs exact")
			}
		}
	}
}

func TestApproxUpperBoundsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomAgreements(rng, 2+rng.Intn(6))
		level := 1 + rng.Intn(len(s))
		e := Exact(s, level)
		a := Approx(s, level)
		for i := range e {
			for j := range e[i] {
				if a[i][j] < e[i][j]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExactMonotoneInLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomAgreements(rng, 2+rng.Intn(6))
		n := len(s)
		prev := Exact(s, 1)
		for level := 2; level < n; level++ {
			cur := Exact(s, level)
			for i := range cur {
				for j := range cur[i] {
					if cur[i][j] < prev[i][j]-1e-12 {
						return false
					}
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacitiesAtLeastOwn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomAgreements(rng, 2+rng.Intn(6))
		v := make([]float64, len(s))
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		c := Capacities(v, Cap(Exact(s, len(s)-1)), nil)
		for i := range c {
			if c[i] < v[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacitiesBoundedByTotal(t *testing.T) {
	// With capping, nobody's capacity exceeds the system total.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomAgreements(rng, 2+rng.Intn(6))
		v := make([]float64, len(s))
		total := 0.0
		for i := range v {
			v[i] = rng.Float64() * 100
			total += v[i]
		}
		c := Capacities(v, Cap(Exact(s, len(s)-1)), nil)
		for i := range c {
			if c[i] > total+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsoluteAgreements(t *testing.T) {
	// A (V=10) has an absolute agreement of 3 with C and no relative ones.
	s := [][]float64{
		{0, 0, 0},
		{0, 0, 0},
		{0, 0, 0},
	}
	a := [][]float64{
		{0, 0, 3},
		{0, 0, 0},
		{0, 0, 0},
	}
	v := []float64{10, 0, 5}
	tm := Exact(s, 2)
	c := Capacities(v, tm, a)
	almost(t, c[2], 8, 1e-12, "C = 5 own + 3 absolute")
	almost(t, c[0], 10, 1e-12, "A keeps 10")

	// Absolute promise larger than the source owns is clamped to V_k.
	a[0][2] = 25
	c = Capacities(v, tm, a)
	almost(t, c[2], 15, 1e-12, "C clamped to 5 + V_A")
}

func TestAbsolutePlusRelativeClamp(t *testing.T) {
	// U_ki = min(I + A, V_k): 60% of 10 plus absolute 7 exceeds 10.
	s := [][]float64{{0, 0.6}, {0, 0}}
	a := [][]float64{{0, 7}, {0, 0}}
	v := []float64{10, 1}
	c := Capacities(v, Exact(s, 1), a)
	almost(t, c[1], 11, 1e-12, "B = 1 own + min(6+7, 10)")
}

func TestLevelClamping(t *testing.T) {
	s := ring(5, 0.5)
	full := Exact(s, 4)
	over := Exact(s, 100)
	under := Exact(s, 0)
	lvl1 := Exact(s, 1)
	for i := range full {
		for j := range full[i] {
			almost(t, over[i][j], full[i][j], 1e-12, "level > n-1 clamps to n-1")
			almost(t, under[i][j], lvl1[i][j], 1e-12, "level < 1 clamps to 1")
		}
	}
}

func TestFlows(t *testing.T) {
	s := [][]float64{{0, 0.5}, {0, 0}}
	v := []float64{20, 0}
	i := Flows(v, Exact(s, 1))
	almost(t, i[0][1], 10, 1e-12, "I[0][1]")
}

func TestPanicsOnBadInput(t *testing.T) {
	bad := [][]float64{{1}}
	for name, f := range map[string]func(){
		"Exact":  func() { Exact(bad, 1) },
		"Approx": func() { Approx(bad, 1) },
		"Flows":  func() { Flows([]float64{1, 2}, [][]float64{{0}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on bad input", name)
				}
			}()
			f()
		}()
	}
}

func ring(n int, share float64) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		s[i][(i+1)%n] = share
	}
	return s
}

func randomAgreements(rng *rand.Rand, n int) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i != j && rng.Float64() < 0.5 {
				s[i][j] = rng.Float64() * 0.5
			}
		}
	}
	return s
}

func TestWithinBudget(t *testing.T) {
	small := ring(5, 0.5)
	if !WithinBudget(small, 4, 1000) {
		t.Error("small ring should fit a 1000-step budget")
	}
	dense := make([][]float64, 20)
	for i := range dense {
		dense[i] = make([]float64, 20)
		for j := range dense[i] {
			if i != j {
				dense[i][j] = 0.1
			}
		}
	}
	if WithinBudget(dense, 19, 100000) {
		t.Error("dense 20-node graph cannot fit a 100k-step budget")
	}
	// The check itself must return quickly even on the dense graph.
}

func TestWithinBudgetMatchesExactCost(t *testing.T) {
	// If WithinBudget approves a graph, Exact must terminate promptly —
	// run it to be sure (the budget bounds its work).
	s := ring(8, 0.9)
	if !WithinBudget(s, 7, 10000) {
		t.Fatal("ring should be cheap")
	}
	Exact(s, 7)
}
