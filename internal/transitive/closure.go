package transitive

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/num"
	"repro/internal/par"
)

// ErrBudget is wrapped by UpdateEdge/UpdateRow when re-enumerating the
// affected rows of an exact closure would exceed the handle's step
// budget — the incremental analogue of the WithinBudget refusal guarding
// full Exact builds. Callers should treat the mutation as "too dense to
// enforce exactly", the same answer a from-scratch rebuild would give.
var ErrBudget = errors.New("transitive: exact enumeration exceeds step budget")

// Closure maintains a flow-coefficient matrix T^(level) incrementally
// under single-edge and single-row agreement mutations. A full Exact (or
// Approx) recompute touches every source row; an edge change, however,
// can only alter the rows of principals that can reach the edge's source,
// so the delta path recomputes exactly those rows and shares the rest.
//
// The affected-set argument: a cycle-free chain out of row x uses edge
// (src,dst) only if the chain visits src first, i.e. x has a simple path
// to src of at most level-1 edges. The reverse breadth-first search in
// affected computes {x : dist(x→src) <= level-1}, a superset of every row
// whose chain set mentions the edge. The set itself is stable across the
// edit: any walk ending at src that traverses (src,dst) visited src
// before the edge, so its prefix is a shorter walk to src that avoids it
// — the edge can never change a shortest path TO its own source. The same
// argument covers Approx (walk counting) and whole-row updates (every
// edited edge leaves src).
//
// Recomputed rows replay the exact per-row kernels of Exact/Approx
// (exactRow and matmulInto's row loop), so an untouched-or-recomputed row
// is bit-for-bit identical to a from-scratch rebuild — pinned by the
// closure tests and the modeltest incremental-equivalence property.
//
// The agreement matrix itself lives in CSR form — per-row ascending
// column lists (adj) with aligned values (vals) — so a closure over a
// sparse graph costs O(n + edges) for S regardless of n; only the flow
// matrix T stays dense. The sparse kernels read the same floats in the
// same order a dense scan would, keeping every result bit-identical to
// the historical dense-row implementation.
//
// Closures are copy-on-write: mutators return a derived *Closure sharing
// every unchanged row slice with the receiver, which stays valid — the
// concurrency model the grm server needs, where in-flight solves hold a
// snapshot of the previous planner.
type Closure struct {
	// reqLevel is the level of transitivity as requested at construction,
	// before clamping; clamping is redone against the current n so a
	// full-transitivity closure (level >= n-1) stays full after Grow.
	reqLevel int
	approx   bool
	n        int
	t        [][]float64 // flow coefficients; rows shared COW
	adj      [][]int32   // ascending non-zero out-edges per row; shared COW
	vals     [][]float64 // edge values aligned with adj; shared COW
	edges    int
	// budget caps the DFS steps an exact delta may enumerate (0 = no
	// cap); exceeded budgets surface as ErrBudget before any recompute.
	budget int
}

// blastDenominator sets the delta fallback threshold: once an update's
// affected set covers more than 1/blastDenominator of the rows, the
// parallel full recompute is at least as cheap as the serial per-row
// delta and the Closure falls back to Exact/Approx wholesale.
const blastDenominator = 2

// NewClosure computes the full closure of s at the given level and wraps
// it in an incremental handle. Like Exact/Approx it panics if Validate(s)
// fails; validate untrusted input first. Level values beyond n-1 request
// full transitivity and keep requesting it as the closure grows.
func NewClosure(s [][]float64, level int, approx bool) *Closure {
	if err := Validate(s); err != nil {
		panic(err)
	}
	adj, vals, edges := adjacency(s)
	return newClosureFromRows(len(s), adj, vals, edges, level, approx)
}

// NewClosureCSR is NewClosure over CSR rows: cols holds each row's
// ascending non-zero column indices, vals the matching values (rows may
// be nil). The closure keeps references to the rows; callers must treat
// them as immutable afterwards. Invalid input (diagonal or negative
// entries) panics, mirroring NewClosure.
func NewClosureCSR(n int, cols [][]int32, vals [][]float64, level int, approx bool) *Closure {
	if err := validateCSR(n, cols, vals); err != nil {
		panic(err)
	}
	edges := 0
	for _, row := range cols {
		edges += len(row)
	}
	return newClosureFromRows(n, cols, vals, edges, level, approx)
}

func newClosureFromRows(n int, adj [][]int32, vals [][]float64, edges, level int, approx bool) *Closure {
	var t [][]float64
	if approx {
		t = approxWorkersCSR(n, adj, vals, level, par.Workers(n))
	} else {
		t = exactWorkersCSR(n, adj, vals, level, par.Workers(n))
	}
	return &Closure{reqLevel: level, approx: approx, n: n, t: t, adj: adj, vals: vals, edges: edges}
}

// N returns the number of principals.
func (c *Closure) N() int { return c.n }

// Level returns the effective (clamped) level of transitivity.
func (c *Closure) Level() int { return clampLevel(c.reqLevel, c.n) }

// IsApprox reports whether the closure uses the matrix-power
// approximation instead of exact chain enumeration.
func (c *Closure) IsApprox() bool { return c.approx }

// T returns the current flow-coefficient matrix. The rows are shared
// with the Closure (and possibly with derived Closures): callers must
// treat both levels of the slice as read-only.
func (c *Closure) T() [][]float64 { return c.t }

// Edge returns the current agreement entry S[src][dst]: a binary search
// over row src's sorted column list, 0 when unstored.
func (c *Closure) Edge(src, dst int) float64 {
	cols := c.adj[src]
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(dst) })
	if k < len(cols) && cols[k] == int32(dst) {
		return c.vals[src][k]
	}
	return 0
}

// SparseRow returns row src of the agreement matrix as ascending column
// indices and values. The slices are shared with the closure and must be
// treated as read-only.
func (c *Closure) SparseRow(src int) ([]int32, []float64) {
	return c.adj[src], c.vals[src]
}

// Edges returns the number of stored agreement entries.
func (c *Closure) Edges() int { return c.edges }

// DenseS materializes the agreement matrix as dense rows — the export
// used by snapshots and tests; unstored entries come out as +0 exactly.
func (c *Closure) DenseS() [][]float64 {
	out := zeros(c.n)
	for i := 0; i < c.n; i++ {
		for k, j := range c.adj[i] {
			out[i][j] = c.vals[i][k]
		}
	}
	return out
}

// WithBudget caps the DFS steps an exact delta recompute may take before
// giving up with ErrBudget (0 removes the cap). It returns the receiver
// for chaining at construction time; derived closures inherit the
// budget. Mutations that would exceed it are refused before any row is
// enumerated, mirroring the WithinBudget guard on full builds.
func (c *Closure) WithBudget(steps int) *Closure {
	c.budget = steps
	return c
}

// shallow clones the slice headers so a derived closure can swap
// individual rows without touching the receiver.
func (c *Closure) shallow() *Closure {
	d := &Closure{reqLevel: c.reqLevel, approx: c.approx, n: c.n, edges: c.edges, budget: c.budget}
	d.t = append([][]float64(nil), c.t...)
	d.adj = append([][]int32(nil), c.adj...)
	d.vals = append([][]float64(nil), c.vals...)
	return d
}

// UpdateEdge derives a closure with S[src][dst] changed from oldVal to
// newVal, recomputing only the affected rows. It returns the derived
// closure (the receiver is unchanged and stays valid) and the ascending
// list of rows whose T actually changed — rows recomputed to bit-identical
// values are reported as unchanged and keep their shared slices. oldVal
// must match the current entry; the mismatch error catches callers whose
// shadow copy of S has drifted from the closure's.
func (c *Closure) UpdateEdge(src, dst int, oldVal, newVal float64) (*Closure, []int, error) {
	n := c.n
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): index out of range for n=%d", src, dst, n)
	}
	if src == dst {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): diagonal must stay zero", src, dst)
	}
	if newVal < 0 {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): value %g must be non-negative", src, dst, newVal)
	}
	cur := c.Edge(src, dst)
	if !num.IsZero(cur - oldVal) {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): stale old value %g, closure holds %g", src, dst, oldVal, cur)
	}
	if num.IsZero(oldVal - newVal) {
		return c, nil, nil
	}
	d := c.shallow()
	d.adj[src], d.vals[src] = setSparseEntry(c.adj[src], c.vals[src], dst, newVal)
	d.edges += len(d.adj[src]) - len(c.adj[src])
	rows := c.affected(src)
	if err := d.checkBudget(rows); err != nil {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): %w", src, dst, err)
	}
	return d, d.recompute(c, rows), nil
}

// setSparseEntry returns fresh row slices with column dst set to v —
// inserted, replaced, or removed (exact zeros are unstored) — leaving
// the input rows untouched (they stay shared with ancestor closures).
func setSparseEntry(cols []int32, vals []float64, dst int, v float64) ([]int32, []float64) {
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(dst) })
	present := k < len(cols) && cols[k] == int32(dst)
	switch {
	case num.IsZero(v) && !present:
		return cols, vals
	case num.IsZero(v): // remove
		nc := make([]int32, 0, len(cols)-1)
		nv := make([]float64, 0, len(vals)-1)
		nc = append(append(nc, cols[:k]...), cols[k+1:]...)
		nv = append(append(nv, vals[:k]...), vals[k+1:]...)
		return nc, nv
	case present: // replace
		nc := append([]int32(nil), cols...)
		nv := append([]float64(nil), vals...)
		nv[k] = v
		return nc, nv
	default: // insert at k
		nc := make([]int32, 0, len(cols)+1)
		nv := make([]float64, 0, len(vals)+1)
		nc = append(append(append(nc, cols[:k]...), int32(dst)), cols[k:]...)
		nv = append(append(append(nv, vals[:k]...), v), vals[k:]...)
		return nc, nv
	}
}

// UpdateRow derives a closure with the whole out-edge row S[src]
// replaced. Validation matches Validate: the diagonal entry must be zero
// and every entry non-negative. The affected set is the same as a single
// edge update's — every edited edge leaves src.
func (c *Closure) UpdateRow(src int, row []float64) (*Closure, []int, error) {
	n := c.n
	if src < 0 || src >= n {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): index out of range for n=%d", src, n)
	}
	if len(row) != n {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): row has %d entries, want %d", src, len(row), n)
	}
	if !num.IsZero(row[src]) {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): diagonal entry %g must be zero", src, row[src])
	}
	cur := make([]float64, n)
	for k, j := range c.adj[src] {
		cur[j] = c.vals[src][k]
	}
	same := true
	for j, v := range row {
		if v < 0 {
			return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): entry %d = %g must be non-negative", src, j, v)
		}
		if !num.IsZero(v - cur[j]) {
			same = false
		}
	}
	if same {
		return c, nil, nil
	}
	d := c.shallow()
	d.adj[src], d.vals[src] = sparseRowOf(row)
	d.edges += len(d.adj[src]) - len(c.adj[src])
	rows := c.affected(src)
	if err := d.checkBudget(rows); err != nil {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): %w", src, err)
	}
	return d, d.recompute(c, rows), nil
}

// Grow derives a closure extended by k principals with no agreements. A
// fresh principal has no edges, so no chain among the existing rows can
// use it: the exact closure is the old one zero-extended, with no
// enumeration at all. Approx closures recompute in the one corner case
// where growing raises the clamped level (a full-transitivity request on
// a cyclic graph gains longer walks).
func (c *Closure) Grow(k int) *Closure {
	if k <= 0 {
		return c
	}
	nn := c.n + k
	d := &Closure{reqLevel: c.reqLevel, approx: c.approx, n: nn, edges: c.edges, budget: c.budget}
	d.t = growRows(c.t, nn)
	d.adj = make([][]int32, nn)
	copy(d.adj, c.adj)
	d.vals = make([][]float64, nn)
	copy(d.vals, c.vals)
	if c.approx && d.Level() != c.Level() {
		d.t = approxWorkersCSR(nn, d.adj, d.vals, d.reqLevel, par.Workers(nn))
	}
	return d
}

// growRows copies an n×n matrix into nn×nn, zero-extending every row and
// adding zero rows. Rows must be reallocated (they get longer), so unlike
// the mutators this is an O(nn²) copy — but still no chain enumeration.
func growRows(m [][]float64, nn int) [][]float64 {
	out := make([][]float64, nn)
	for i := range out {
		out[i] = make([]float64, nn)
		if i < len(m) {
			copy(out[i], m[i])
		}
	}
	return out
}

// sparseRowOf converts one dense row into its CSR form: ascending
// non-zero columns plus values.
func sparseRowOf(row []float64) ([]int32, []float64) {
	var cols []int32
	var vals []float64
	for j, v := range row {
		if !num.IsZero(v) {
			cols = append(cols, int32(j))
			vals = append(vals, v)
		}
	}
	return cols, vals
}

// hasEdge reports whether S[x][u] is stored (non-zero).
func (c *Closure) hasEdge(x, u int) bool {
	cols := c.adj[x]
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(u) })
	return k < len(cols) && cols[k] == int32(u)
}

// affected returns, ascending, the rows whose chain enumeration can
// mention an edge out of src: src itself plus every row within reverse
// distance level-1 of src. The scan walks predecessors by a per-row
// binary search for the target column (S holds no reverse index); the
// cost is O(level · n · log deg · frontier) — negligible next to the
// recompute it prunes.
func (c *Closure) affected(src int) []int {
	n := c.n
	depth := c.Level() - 1
	seen := make([]bool, n)
	seen[src] = true
	out := []int{src}
	frontier := []int{src}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			for x := 0; x < n; x++ {
				if !seen[x] && c.hasEdge(x, u) {
					seen[x] = true
					next = append(next, x)
					out = append(out, x)
				}
			}
		}
		frontier = next
	}
	sort.Ints(out)
	return out
}

// checkBudget pre-counts the DFS steps an exact recompute of the given
// rows would take on d's (post-update) graph — the rows the blast
// fallback would expand to all of them — and returns ErrBudget when the
// count exceeds the handle's budget. The counting traversal is the same
// depth-limited adjacency walk the recompute performs, minus the float
// work, and aborts as soon as the budget is crossed, so its own cost is
// bounded by the budget.
func (d *Closure) checkBudget(rows []int) error {
	if d.approx || d.budget <= 0 {
		return nil
	}
	n := d.n
	if blastDenominator*len(rows) > n {
		rows = make([]int, n)
		for i := range rows {
			rows[i] = i
		}
	}
	maxLen := d.Level()
	visited := make([]bool, n)
	steps := 0
	var dfs func(cur, depth int) bool
	dfs = func(cur, depth int) bool {
		if depth == maxLen {
			return true
		}
		for _, next := range d.adj[cur] {
			if visited[next] {
				continue
			}
			steps++
			if steps > d.budget {
				return false
			}
			visited[next] = true
			ok := dfs(int(next), depth+1)
			visited[next] = false
			if !ok {
				return false
			}
		}
		return true
	}
	for _, src := range rows {
		visited[src] = true
		ok := dfs(src, 0)
		visited[src] = false
		if !ok {
			return fmt.Errorf("%w (%d affected rows, budget %d)", ErrBudget, len(rows), d.budget)
		}
	}
	return nil
}

// recompute refreshes the given rows of d.t against d's agreement rows,
// comparing each against prev's row: only rows that actually changed are
// replaced (and reported), so unchanged rows keep sharing memory with
// prev. Past the blast-radius threshold it abandons the delta and
// recomputes the whole matrix with the parallel full kernels.
func (d *Closure) recompute(prev *Closure, rows []int) []int {
	n := d.n
	if blastDenominator*len(rows) > n {
		if d.approx {
			d.t = approxWorkersCSR(n, d.adj, d.vals, d.reqLevel, par.Workers(n))
		} else {
			d.t = exactWorkersCSR(n, d.adj, d.vals, d.reqLevel, par.Workers(n))
		}
		var changed []int
		for i := 0; i < n; i++ {
			if rowsEqual(prev.t[i], d.t[i]) {
				d.t[i] = prev.t[i] // keep sharing the identical row
			} else {
				changed = append(changed, i)
			}
		}
		return changed
	}
	maxLen := d.Level()
	var p, nx []float64 // approx row scratch, reused across rows
	var changed []int
	for _, src := range rows {
		fresh := make([]float64, n)
		if d.approx {
			if p == nil {
				p = make([]float64, n)
				nx = make([]float64, n)
			}
			d.approxRow(src, fresh, p, nx)
		} else {
			exactRowCSR(n, d.adj, d.vals, src, maxLen, fresh)
		}
		if rowsEqual(prev.t[src], fresh) {
			continue
		}
		d.t[src] = fresh
		changed = append(changed, src)
	}
	return changed
}

// approxRow computes one row of Σ_{k=1..level} S^k. Row src of S^k
// depends only on row src of S^(k-1), so the row iterates a vector-matrix
// product — replicating matmulInto's per-row operation order (ascending
// k, zero entries skipped, ascending j accumulation) and approxWorkers'
// add order exactly, which is what makes the result bit-identical to the
// full recompute.
func (d *Closure) approxRow(src int, sum, p, nx []float64) {
	n := d.n
	for j := 0; j < n; j++ {
		p[j] = 0
	}
	for k, j := range d.adj[src] {
		p[j] = d.vals[src][k]
	}
	for j := 0; j < n; j++ {
		sum[j] = 0
	}
	for j := 0; j < n; j++ {
		sum[j] += p[j]
	}
	maxLen := d.Level()
	for k := 2; k <= maxLen; k++ {
		for j := 0; j < n; j++ {
			nx[j] = 0
		}
		for kk := 0; kk < n; kk++ {
			aik := p[kk]
			if num.IsZero(aik) {
				continue
			}
			cols, vs := d.adj[kk], d.vals[kk]
			for idx, j := range cols {
				nx[j] += aik * vs[idx]
			}
		}
		p, nx = nx, p
		for j := 0; j < n; j++ {
			sum[j] += p[j]
		}
	}
}

// rowsEqual reports whether two rows hold identical values.
func rowsEqual(a, b []float64) bool {
	for i := range a {
		if !num.IsZero(a[i] - b[i]) {
			return false
		}
	}
	return true
}
