package transitive

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/num"
	"repro/internal/par"
)

// ErrBudget is wrapped by UpdateEdge/UpdateRow when re-enumerating the
// affected rows of an exact closure would exceed the handle's step
// budget — the incremental analogue of the WithinBudget refusal guarding
// full Exact builds. Callers should treat the mutation as "too dense to
// enforce exactly", the same answer a from-scratch rebuild would give.
var ErrBudget = errors.New("transitive: exact enumeration exceeds step budget")

// Closure maintains a flow-coefficient matrix T^(level) incrementally
// under single-edge and single-row agreement mutations. A full Exact (or
// Approx) recompute touches every source row; an edge change, however,
// can only alter the rows of principals that can reach the edge's source,
// so the delta path recomputes exactly those rows and shares the rest.
//
// The affected-set argument: a cycle-free chain out of row x uses edge
// (src,dst) only if the chain visits src first, i.e. x has a simple path
// to src of at most level-1 edges. The reverse breadth-first search in
// affected computes {x : dist(x→src) <= level-1}, a superset of every row
// whose chain set mentions the edge. The set itself is stable across the
// edit: any walk ending at src that traverses (src,dst) visited src
// before the edge, so its prefix is a shorter walk to src that avoids it
// — the edge can never change a shortest path TO its own source. The same
// argument covers Approx (walk counting) and whole-row updates (every
// edited edge leaves src).
//
// Recomputed rows replay the exact per-row kernels of Exact/Approx
// (exactRow and matmulInto's row loop), so an untouched-or-recomputed row
// is bit-for-bit identical to a from-scratch rebuild — pinned by the
// closure tests and the modeltest incremental-equivalence property.
//
// Closures are copy-on-write: mutators return a derived *Closure sharing
// every unchanged row slice with the receiver, which stays valid — the
// concurrency model the grm server needs, where in-flight solves hold a
// snapshot of the previous planner.
type Closure struct {
	// reqLevel is the level of transitivity as requested at construction,
	// before clamping; clamping is redone against the current n so a
	// full-transitivity closure (level >= n-1) stays full after Grow.
	reqLevel int
	approx   bool
	s        [][]float64 // agreement matrix; rows shared COW with ancestors
	t        [][]float64 // flow coefficients; rows shared COW
	adj      [][]int32   // ascending non-zero out-edges per row; shared COW
	edges    int
	// budget caps the DFS steps an exact delta may enumerate (0 = no
	// cap); exceeded budgets surface as ErrBudget before any recompute.
	budget int
}

// blastDenominator sets the delta fallback threshold: once an update's
// affected set covers more than 1/blastDenominator of the rows, the
// parallel full recompute is at least as cheap as the serial per-row
// delta and the Closure falls back to Exact/Approx wholesale.
const blastDenominator = 2

// NewClosure computes the full closure of s at the given level and wraps
// it in an incremental handle. Like Exact/Approx it panics if Validate(s)
// fails; validate untrusted input first. Level values beyond n-1 request
// full transitivity and keep requesting it as the closure grows.
func NewClosure(s [][]float64, level int, approx bool) *Closure {
	n := len(s)
	cs := zeros(n)
	for i := range s {
		copy(cs[i], s[i])
	}
	var t [][]float64
	if approx {
		t = Approx(cs, level)
	} else {
		t = Exact(cs, level)
	}
	adj, edges := adjacency(cs)
	return &Closure{reqLevel: level, approx: approx, s: cs, t: t, adj: adj, edges: edges}
}

// N returns the number of principals.
func (c *Closure) N() int { return len(c.s) }

// Level returns the effective (clamped) level of transitivity.
func (c *Closure) Level() int { return clampLevel(c.reqLevel, len(c.s)) }

// IsApprox reports whether the closure uses the matrix-power
// approximation instead of exact chain enumeration.
func (c *Closure) IsApprox() bool { return c.approx }

// T returns the current flow-coefficient matrix. The rows are shared
// with the Closure (and possibly with derived Closures): callers must
// treat both levels of the slice as read-only.
func (c *Closure) T() [][]float64 { return c.t }

// Edge returns the current agreement entry S[src][dst].
func (c *Closure) Edge(src, dst int) float64 { return c.s[src][dst] }

// WithBudget caps the DFS steps an exact delta recompute may take before
// giving up with ErrBudget (0 removes the cap). It returns the receiver
// for chaining at construction time; derived closures inherit the
// budget. Mutations that would exceed it are refused before any row is
// enumerated, mirroring the WithinBudget guard on full builds.
func (c *Closure) WithBudget(steps int) *Closure {
	c.budget = steps
	return c
}

// shallow clones the slice headers so a derived closure can swap
// individual rows without touching the receiver.
func (c *Closure) shallow() *Closure {
	d := &Closure{reqLevel: c.reqLevel, approx: c.approx, edges: c.edges, budget: c.budget}
	d.s = append([][]float64(nil), c.s...)
	d.t = append([][]float64(nil), c.t...)
	d.adj = append([][]int32(nil), c.adj...)
	return d
}

// UpdateEdge derives a closure with S[src][dst] changed from oldVal to
// newVal, recomputing only the affected rows. It returns the derived
// closure (the receiver is unchanged and stays valid) and the ascending
// list of rows whose T actually changed — rows recomputed to bit-identical
// values are reported as unchanged and keep their shared slices. oldVal
// must match the current entry; the mismatch error catches callers whose
// shadow copy of S has drifted from the closure's.
func (c *Closure) UpdateEdge(src, dst int, oldVal, newVal float64) (*Closure, []int, error) {
	n := len(c.s)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): index out of range for n=%d", src, dst, n)
	}
	if src == dst {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): diagonal must stay zero", src, dst)
	}
	if newVal < 0 {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): value %g must be non-negative", src, dst, newVal)
	}
	if !num.IsZero(c.s[src][dst] - oldVal) {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): stale old value %g, closure holds %g", src, dst, oldVal, c.s[src][dst])
	}
	if num.IsZero(oldVal - newVal) {
		return c, nil, nil
	}
	d := c.shallow()
	row := append([]float64(nil), c.s[src]...)
	row[dst] = newVal
	d.s[src] = row
	d.adj[src] = adjRow(row)
	d.edges += len(d.adj[src]) - len(c.adj[src])
	rows := c.affected(src)
	if err := d.checkBudget(rows); err != nil {
		return nil, nil, fmt.Errorf("transitive: UpdateEdge(%d, %d): %w", src, dst, err)
	}
	return d, d.recompute(c, rows), nil
}

// UpdateRow derives a closure with the whole out-edge row S[src]
// replaced. Validation matches Validate: the diagonal entry must be zero
// and every entry non-negative. The affected set is the same as a single
// edge update's — every edited edge leaves src.
func (c *Closure) UpdateRow(src int, row []float64) (*Closure, []int, error) {
	n := len(c.s)
	if src < 0 || src >= n {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): index out of range for n=%d", src, n)
	}
	if len(row) != n {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): row has %d entries, want %d", src, len(row), n)
	}
	if !num.IsZero(row[src]) {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): diagonal entry %g must be zero", src, row[src])
	}
	same := true
	for j, v := range row {
		if v < 0 {
			return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): entry %d = %g must be non-negative", src, j, v)
		}
		if !num.IsZero(v - c.s[src][j]) {
			same = false
		}
	}
	if same {
		return c, nil, nil
	}
	d := c.shallow()
	d.s[src] = append([]float64(nil), row...)
	d.adj[src] = adjRow(d.s[src])
	d.edges += len(d.adj[src]) - len(c.adj[src])
	rows := c.affected(src)
	if err := d.checkBudget(rows); err != nil {
		return nil, nil, fmt.Errorf("transitive: UpdateRow(%d): %w", src, err)
	}
	return d, d.recompute(c, rows), nil
}

// Grow derives a closure extended by k principals with no agreements. A
// fresh principal has no edges, so no chain among the existing rows can
// use it: the exact closure is the old one zero-extended, with no
// enumeration at all. Approx closures recompute in the one corner case
// where growing raises the clamped level (a full-transitivity request on
// a cyclic graph gains longer walks).
func (c *Closure) Grow(k int) *Closure {
	if k <= 0 {
		return c
	}
	n := len(c.s)
	nn := n + k
	d := &Closure{reqLevel: c.reqLevel, approx: c.approx, edges: c.edges, budget: c.budget}
	d.s = growRows(c.s, nn)
	d.t = growRows(c.t, nn)
	d.adj = make([][]int32, nn)
	copy(d.adj, c.adj)
	if c.approx && d.Level() != c.Level() {
		d.t = Approx(d.s, d.reqLevel)
	}
	return d
}

// growRows copies an n×n matrix into nn×nn, zero-extending every row and
// adding zero rows. Rows must be reallocated (they get longer), so unlike
// the mutators this is an O(nn²) copy — but still no chain enumeration.
func growRows(m [][]float64, nn int) [][]float64 {
	out := make([][]float64, nn)
	for i := range out {
		out[i] = make([]float64, nn)
		if i < len(m) {
			copy(out[i], m[i])
		}
	}
	return out
}

// adjRow rebuilds one adjacency list: the ascending non-zero out-edges.
func adjRow(row []float64) []int32 {
	var out []int32
	for j, v := range row {
		if !num.IsZero(v) {
			out = append(out, int32(j))
		}
	}
	return out
}

// affected returns, ascending, the rows whose chain enumeration can
// mention an edge out of src: src itself plus every row within reverse
// distance level-1 of src. The scan walks predecessors by column lookup
// (s[x][u] != 0) so no reverse adjacency index needs maintaining; the
// cost is O(level · n · frontier), bounded by O(n²) — negligible next to
// the recompute it prunes.
func (c *Closure) affected(src int) []int {
	n := len(c.s)
	depth := c.Level() - 1
	seen := make([]bool, n)
	seen[src] = true
	out := []int{src}
	frontier := []int{src}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			for x := 0; x < n; x++ {
				if !seen[x] && !num.IsZero(c.s[x][u]) {
					seen[x] = true
					next = append(next, x)
					out = append(out, x)
				}
			}
		}
		frontier = next
	}
	sort.Ints(out)
	return out
}

// checkBudget pre-counts the DFS steps an exact recompute of the given
// rows would take on d's (post-update) graph — the rows the blast
// fallback would expand to all of them — and returns ErrBudget when the
// count exceeds the handle's budget. The counting traversal is the same
// depth-limited adjacency walk the recompute performs, minus the float
// work, and aborts as soon as the budget is crossed, so its own cost is
// bounded by the budget.
func (d *Closure) checkBudget(rows []int) error {
	if d.approx || d.budget <= 0 {
		return nil
	}
	n := len(d.s)
	if blastDenominator*len(rows) > n {
		rows = make([]int, n)
		for i := range rows {
			rows[i] = i
		}
	}
	maxLen := d.Level()
	visited := make([]bool, n)
	steps := 0
	var dfs func(cur, depth int) bool
	dfs = func(cur, depth int) bool {
		if depth == maxLen {
			return true
		}
		for _, next := range d.adj[cur] {
			if visited[next] {
				continue
			}
			steps++
			if steps > d.budget {
				return false
			}
			visited[next] = true
			ok := dfs(int(next), depth+1)
			visited[next] = false
			if !ok {
				return false
			}
		}
		return true
	}
	for _, src := range rows {
		visited[src] = true
		ok := dfs(src, 0)
		visited[src] = false
		if !ok {
			return fmt.Errorf("%w (%d affected rows, budget %d)", ErrBudget, len(rows), d.budget)
		}
	}
	return nil
}

// recompute refreshes the given rows of d.t against d.s, comparing each
// against prev's row: only rows that actually changed are replaced (and
// reported), so unchanged rows keep sharing memory with prev. Past the
// blast-radius threshold it abandons the delta and recomputes the whole
// matrix with the parallel full kernels.
func (d *Closure) recompute(prev *Closure, rows []int) []int {
	n := len(d.s)
	if blastDenominator*len(rows) > n {
		if d.approx {
			d.t = approxWorkers(d.s, d.reqLevel, par.Workers(n))
		} else {
			d.t = exactWorkers(d.s, d.reqLevel, par.Workers(n))
		}
		var changed []int
		for i := 0; i < n; i++ {
			if rowsEqual(prev.t[i], d.t[i]) {
				d.t[i] = prev.t[i] // keep sharing the identical row
			} else {
				changed = append(changed, i)
			}
		}
		return changed
	}
	maxLen := d.Level()
	dense := 2*d.edges >= n*n
	var p, nx []float64 // approx row scratch, reused across rows
	var changed []int
	for _, src := range rows {
		fresh := make([]float64, n)
		if d.approx {
			if p == nil {
				p = make([]float64, n)
				nx = make([]float64, n)
			}
			d.approxRow(src, fresh, p, nx)
		} else {
			exactRow(d.s, d.adj, src, maxLen, fresh, dense)
		}
		if rowsEqual(prev.t[src], fresh) {
			continue
		}
		d.t[src] = fresh
		changed = append(changed, src)
	}
	return changed
}

// approxRow computes one row of Σ_{k=1..level} S^k. Row src of S^k
// depends only on row src of S^(k-1), so the row iterates a vector-matrix
// product — replicating matmulInto's per-row operation order (ascending
// k, zero entries skipped, ascending j accumulation) and approxWorkers'
// add order exactly, which is what makes the result bit-identical to the
// full recompute.
func (d *Closure) approxRow(src int, sum, p, nx []float64) {
	n := len(d.s)
	copy(p, d.s[src])
	for j := 0; j < n; j++ {
		sum[j] = 0
	}
	for j := 0; j < n; j++ {
		sum[j] += p[j]
	}
	maxLen := d.Level()
	for k := 2; k <= maxLen; k++ {
		for j := 0; j < n; j++ {
			nx[j] = 0
		}
		for kk := 0; kk < n; kk++ {
			aik := p[kk]
			if num.IsZero(aik) {
				continue
			}
			bk := d.s[kk]
			for j := 0; j < n; j++ {
				nx[j] += aik * bk[j]
			}
		}
		p, nx = nx, p
		for j := 0; j < n; j++ {
			sum[j] += p[j]
		}
	}
}

// rowsEqual reports whether two rows hold identical values.
func rowsEqual(a, b []float64) bool {
	for i := range a {
		if !num.IsZero(a[i] - b[i]) {
			return false
		}
	}
	return true
}
