package scenario

import (
	"strings"
	"testing"
)

// FuzzBundleDecode hammers the three bundle files with arbitrary bytes:
// the decoder must reject malformed input with an error — never panic —
// and anything it accepts must satisfy the format invariants the replay
// driver depends on (event count matching meta, non-decreasing
// timestamps, in-range strictly-increasing expectation indices).
func FuzzBundleDecode(f *testing.F) {
	goodMeta := `{"format":1,"name":"x","events":2,"ttl_ms":5000}`
	goodEvents := `{"t":0,"op":"register","name":"a","capacity":1}` + "\n" +
		`{"t":10,"op":"alloc","p":0,"amount":0.5}` + "\n"
	goodExpected := `{"i":0,"principal":0,"avail":[1],"leases":0}` + "\n" +
		`{"i":1,"err":"*"}` + "\n"

	f.Add([]byte(goodMeta), []byte(goodEvents), []byte(goodExpected))
	// One seed per malformation class the tests pin, so the fuzzer
	// starts from each rejection path's frontier.
	f.Add([]byte(`{`), []byte(""), []byte(""))                                                               // truncated meta
	f.Add([]byte(goodMeta+` {"x":1}`), []byte(goodEvents), []byte(""))                                       // trailing meta data
	f.Add([]byte(`{"format":99,"name":"x","events":0}`), []byte(""), []byte(""))                             // wrong format
	f.Add([]byte(`{"format":1,"name":"x","events":7}`), []byte(goodEvents), []byte(""))                      // truncated log
	f.Add([]byte(goodMeta), []byte("{not json}\n"), []byte(""))                                              // malformed event line
	f.Add([]byte(goodMeta), []byte(`{"t":5,"op":"advance"}`+"\n"+`{"t":4,"op":"advance"}`+"\n"), []byte("")) // out-of-order timestamps
	f.Add([]byte(goodMeta), []byte(`{"t":0,"op":"frobnicate"}`+"\n"), []byte(""))                            // unknown op
	f.Add([]byte(goodMeta), []byte(goodEvents), []byte(`{"i":1}`+"\n"+`{"i":0}`+"\n"))                       // out-of-order expectations
	f.Add([]byte(goodMeta), []byte(goodEvents), []byte(`{"i":9}`+"\n"))                                      // expectation beyond events
	f.Add([]byte(goodMeta), []byte(goodEvents[:len(goodEvents)/2]), []byte(goodExpected))                    // mid-line truncation
	f.Add([]byte("\x00\x01\x02"), []byte("\xff\xfe"), []byte("\x00"))                                        // binary garbage

	f.Fuzz(func(t *testing.T, metaRaw, eventsRaw, expectedRaw []byte) {
		b, err := DecodeBundle(metaRaw, eventsRaw, expectedRaw)
		if err != nil {
			if b != nil {
				t.Fatal("decoder returned both a bundle and an error")
			}
			return
		}
		if b.Meta.Format != FormatVersion || strings.TrimSpace(b.Meta.Name) == "" {
			t.Fatalf("accepted bundle with invalid meta: %+v", b.Meta)
		}
		if len(b.Events) != b.Meta.Events {
			t.Fatalf("accepted %d events against meta count %d", len(b.Events), b.Meta.Events)
		}
		last := int64(0)
		for i, ev := range b.Events {
			if ev.T < last {
				t.Fatalf("accepted out-of-order timestamp at event %d: %d < %d", i, ev.T, last)
			}
			last = ev.T
			if err := ev.Validate(); err != nil {
				t.Fatalf("accepted invalid event %d: %v", i, err)
			}
		}
		for i, out := range b.Expected {
			if i < 0 || i >= len(b.Events) {
				t.Fatalf("accepted out-of-range expectation index %d", i)
			}
			if out == nil {
				t.Fatalf("accepted nil expectation at %d", i)
			}
		}
	})
}
