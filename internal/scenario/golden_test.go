package scenario

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestGoldenISPTenProxyMatchesProxysim cross-checks the checked-in
// isp-10proxy bundle against the proxysim pipeline: every granted
// allocation's takes and θ must match what sim.CompletePlanner(10, 0.1)
// plans over the availability vector the bundle records just before the
// request, and the post-op checkpoint must equal that vector minus the
// takes. The server and the simulator reach the paper's Figure 6–8
// structure through entirely different code paths (wire protocol +
// ledger vs agreement.BuildComplete), so a drift in either planner,
// the share bookkeeping, or the corpus itself fails here.
func TestGoldenISPTenProxyMatchesProxysim(t *testing.T) {
	b, err := ReadBundle("../../scenarios/isp-10proxy")
	if err != nil {
		t.Fatalf("read corpus bundle: %v", err)
	}
	planner, err := sim.CompletePlanner(10, 0.1, core.Config{Level: b.Meta.Level, Approx: b.Meta.Approx})
	if err != nil {
		t.Fatalf("build proxysim planner: %v", err)
	}
	tol := b.Meta.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	checked := 0
	for i, ev := range b.Events {
		if ev.Op != OpAlloc {
			continue
		}
		prev, want := b.Expected[i-1], b.Expected[i]
		if prev == nil || want == nil {
			t.Fatalf("event %d: corpus not densely blessed", i)
		}
		if want.Err != "" {
			continue // refusals carry no takes to cross-check
		}
		v := append([]float64(nil), prev.Avail...)
		plan, err := planner.Plan(v, ev.P, ev.Amount)
		if err != nil {
			t.Fatalf("event %d: proxysim refused alloc(p%d, %g) the server granted: %v", i, ev.P, ev.Amount, err)
		}
		if !vecClose(plan.Take, want.Takes, tol) {
			t.Errorf("event %d: takes diverge\nproxysim: %v\ncorpus:   %v", i, plan.Take, want.Takes)
		}
		if want.Theta == nil || math.Abs(plan.Theta-*want.Theta) > tol {
			t.Errorf("event %d: theta diverges: proxysim %g, corpus %v", i, plan.Theta, want.Theta)
		}
		// The ledger debits exactly the takes (no clamping can trigger:
		// takes never exceed availability on a granted request).
		for j, take := range plan.Take {
			if math.Abs(want.Avail[j]-(prev.Avail[j]-take)) > tol {
				t.Errorf("event %d: post-alloc avail[%d] = %g, want %g - %g", i, j, want.Avail[j], prev.Avail[j], take)
			}
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("cross-checked only %d granted allocations; corpus lost coverage", checked)
	}
}
