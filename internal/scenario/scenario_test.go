package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// minimalBundle is a tiny well-formed bundle for codec tests.
func minimalBundle() *Bundle {
	b := newBuilder("mini", "two peers, one share, one alloc", "test")
	b.reg(0, "a", 2)
	b.reg(0, "b", 3)
	b.shr(10, 0, 1, 0.5)
	b.alc(100, 1, 2.5)
	b.rel(200, 1)
	return b.bundle()
}

func TestBundleWriteReadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "mini")
	b := minimalBundle()
	res, err := Replay(b, ReplayOptions{Bless: true})
	if err != nil {
		t.Fatalf("bless: %v", err)
	}
	b.Expected = res.Actual
	if err := WriteBundle(dir, b); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadBundle(dir)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Meta.Name != "mini" || got.Meta.Format != FormatVersion {
		t.Fatalf("meta round-trip: %+v", got.Meta)
	}
	if len(got.Events) != len(b.Events) {
		t.Fatalf("events round-trip: %d != %d", len(got.Events), len(b.Events))
	}
	if len(got.Expected) != len(b.Expected) {
		t.Fatalf("expected round-trip: %d != %d", len(got.Expected), len(b.Expected))
	}
	if got.Trace() != b.Trace() {
		t.Fatalf("trace changed across write/read:\n%s\nvs\n%s", got.Trace(), b.Trace())
	}
}

func TestDecodeBundleRejections(t *testing.T) {
	goodMeta := []byte(`{"format":1,"name":"x","events":1}`)
	goodEvents := []byte(`{"t":0,"op":"register","name":"a","capacity":1}` + "\n")
	cases := []struct {
		name                   string
		meta, events, expected string
		wantErr                string
	}{
		{"bad meta json", `{`, "", "", "unexpected EOF"},
		{"meta trailing data", `{"format":1,"name":"x","events":0} {"x":1}`, "", "", "trailing data"},
		{"unknown meta field", `{"format":1,"name":"x","events":0,"bogus":3}`, "", "", "bogus"},
		{"wrong format", `{"format":2,"name":"x","events":0}`, "", "", "unsupported format"},
		{"empty name", `{"format":1,"name":"","events":0}`, "", "", "empty name"},
		{"negative events", `{"format":1,"name":"x","events":-1}`, "", "", "negative event count"},
		{"negative ttl", `{"format":1,"name":"x","events":0,"ttl_ms":-5}`, "", "", "negative ttl_ms"},
		{"truncated log", `{"format":1,"name":"x","events":2}`, string(goodEvents), "", "truncated or stale"},
		{"padded log", `{"format":1,"name":"x","events":0}`, string(goodEvents), "", "truncated or stale"},
		{"malformed event line", string(goodMeta), "{not json}\n", "", "invalid character"},
		{"unknown op", string(goodMeta), `{"t":0,"op":"frobnicate"}` + "\n", "", "unknown op"},
		{"unknown event field", string(goodMeta), `{"t":0,"op":"advance","zap":1}` + "\n", "", "zap"},
		{"negative timestamp", string(goodMeta), `{"t":-1,"op":"advance"}` + "\n", "", "negative timestamp"},
		{
			"out of order timestamps",
			`{"format":1,"name":"x","events":2}`,
			`{"t":5,"op":"advance"}` + "\n" + `{"t":4,"op":"advance"}` + "\n",
			"", "out of order",
		},
		{"register empty name", string(goodMeta), `{"t":0,"op":"register","capacity":1}` + "\n", "", "empty name"},
		{"share both kinds", string(goodMeta), `{"t":0,"op":"share","to":1,"fraction":0.5,"quantity":2}` + "\n", "", "exactly one"},
		{"share neither kind", string(goodMeta), `{"t":0,"op":"share","to":1}` + "\n", "", "exactly one"},
		{"attach without parent", string(goodMeta), `{"t":0,"op":"attach","name":"c"}` + "\n", "", "missing parent"},
		{"expected bad json", string(goodMeta), string(goodEvents), "{]\n", "invalid character"},
		{"expected unknown field", string(goodMeta), string(goodEvents), `{"i":0,"wat":1}` + "\n", "wat"},
		{"expected out of order", string(goodMeta), string(goodEvents), `{"i":0}` + "\n" + `{"i":0}` + "\n", "out of order"},
		{"expected beyond events", string(goodMeta), string(goodEvents), `{"i":7}` + "\n", "beyond last event"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBundle([]byte(tc.meta), []byte(tc.events), []byte(tc.expected))
			if err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestDiscover(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"corpus/a", "corpus/b", "corpus/nested/c"} {
		dir := filepath.Join(root, d)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, MetaFile), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(root, "corpus/notabundle"), 0o755); err != nil {
		t.Fatal(err)
	}
	dirs, err := Discover([]string{filepath.Join(root, "corpus") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 3 {
		t.Fatalf("discovered %d bundles, want 3: %v", len(dirs), dirs)
	}
	if _, err := Discover([]string{filepath.Join(root, "corpus/notabundle")}); err == nil {
		t.Fatal("non-bundle directory accepted")
	}
	one, err := Discover([]string{filepath.Join(root, "corpus/a")})
	if err != nil || len(one) != 1 {
		t.Fatalf("explicit dir: %v %v", one, err)
	}
}

// TestMutationSmoke is the acceptance-criteria check: corrupting one
// expectation in a blessed bundle must produce a divergence naming the
// first diverging op.
func TestMutationSmoke(t *testing.T) {
	b := minimalBundle()
	res, err := Replay(b, ReplayOptions{Bless: true})
	if err != nil {
		t.Fatalf("bless: %v", err)
	}
	b.Expected = res.Actual

	// Corrupt the alloc expectation (event 3): claim it took everything
	// from the wrong principal.
	mutIdx := 3
	mut := *b.Expected[mutIdx]
	mut.Takes = []float64{2.5, 0}
	b.Expected[mutIdx] = &mut

	res2, err := Replay(b, ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	d := res2.Divergence
	if d == nil {
		t.Fatal("corrupted expectation replayed clean")
	}
	if d.Index != mutIdx {
		t.Fatalf("divergence at event %d, want %d", d.Index, mutIdx)
	}
	if d.Field != "takes" {
		t.Fatalf("divergence field %q, want takes", d.Field)
	}
	if !strings.Contains(d.Op, "alloc") {
		t.Fatalf("divergence op %q does not identify the alloc", d.Op)
	}
	if d.Status == "" || !strings.Contains(d.Status, "avail") {
		t.Fatalf("divergence carries no server status: %q", d.Status)
	}
	// The replay stops at the first divergence.
	if res2.Events != mutIdx+1 {
		t.Fatalf("replay ran %d events past the divergence", res2.Events-(mutIdx+1))
	}
	// An error-expectation mutation is also caught.
	mut2 := *res.Actual[mutIdx]
	mut2.Err = "grm: alloc: made-up failure"
	b.Expected[mutIdx] = &mut2
	res3, err := Replay(b, ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res3.Divergence == nil || res3.Divergence.Field != "err" {
		t.Fatalf("error mutation not caught: %+v", res3.Divergence)
	}
}

// TestSeededCorpusReplays replays the checked-in corpus — the same gate
// CI runs through cmd/scenario, kept in `go test` so plain test runs
// catch a behavior change that invalidates the corpus.
func TestSeededCorpusReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay spins real servers; skipped in -short")
	}
	dirs, err := Discover([]string{"../../scenarios/..."})
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if len(dirs) < 6 {
		t.Fatalf("corpus has %d bundles, want >= 6", len(dirs))
	}
	for _, dir := range dirs {
		b, err := ReadBundle(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		t.Run(b.Meta.Name, func(t *testing.T) {
			res, err := Replay(b, ReplayOptions{})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Divergence != nil {
				t.Fatalf("diverged:\n%v", res.Divergence)
			}
			if res.Trace != b.Trace() {
				t.Error("clean replay trace differs from the blessed trace")
			}
		})
	}
}
