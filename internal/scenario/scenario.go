// Package scenario implements the record/replay regression corpus: every
// scenario is an on-disk bundle — a directory holding meta.json
// (metadata), events.jsonl (a timestamped log of GRM operations), and
// expected.jsonl (outcome checkpoints) — and a replay driver re-runs the
// bundle against a real grm.Server on a virtual clock, diffing live
// outcomes against the checkpoints with first-divergence reporting.
//
// Bundles come from three sources: hand-authored or programmatically
// seeded corpora (seed.go, the checked-in scenarios/ directory), live
// traffic captured through the grm record tap (Recorder, grmd -record),
// and seeded modeltest cluster schedules (cmd/scenario record). Whatever
// the source, replay is deterministic: the server runs on vclock.Virtual,
// event timestamps drive the clock, and leases expire exactly when the
// log says time passed — so a bundle that replays cleanly today is a
// permanent regression test.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// FormatVersion is the bundle format this package reads and writes.
const FormatVersion = 1

// Operation names events.jsonl may use.
const (
	OpRegister = "register"
	OpReport   = "report"
	OpShare    = "share"
	OpRevoke   = "revoke"
	OpAlloc    = "alloc"
	OpRelease  = "release"
	OpRenew    = "renew"
	OpKill     = "kill"
	OpAdvance  = "advance"
	OpAttach   = "attach"
)

// Meta is the bundle's meta.json: identity, the server configuration the
// replay must reproduce, and the event-count cross-check that catches
// truncated logs.
type Meta struct {
	// Format is the bundle format version; decoding rejects unknown ones.
	Format int `json:"format"`
	// Name identifies the bundle (conventionally the directory name).
	Name string `json:"name"`
	// Title and Source are documentation: what the scenario models and
	// where it comes from (a paper figure, an incident, a recording).
	Title  string `json:"title,omitempty"`
	Source string `json:"source,omitempty"`
	// Created is an RFC 3339 stamp of when the bundle was produced.
	Created string `json:"created,omitempty"`
	// Events is the number of lines events.jsonl must hold; a shorter
	// file is a truncated log and fails decoding.
	Events int `json:"events"`
	// TTLMS is the lease TTL in virtual milliseconds (0 = leases never
	// expire). Armed after the first register so the background reaper
	// stays off and expiry happens only on the schedule's clock.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Level and Approx configure the replay server's allocator
	// (core.Config), mirroring grmd's -level/-approx flags.
	Level  int  `json:"level,omitempty"`
	Approx bool `json:"approx,omitempty"`
	// Tolerance is the float comparison tolerance for expectations
	// (takes, theta, availability). 0 uses DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// DefaultTolerance absorbs cross-platform last-bit drift (e.g. fused
// multiply-add differences) without masking real divergence.
const DefaultTolerance = 1e-9

// ParentSpec describes the parent GRM an attach event builds: sibling
// clusters registered at the parent and the relative share each grants
// the attaching cluster, so the child can borrow through the federation.
// A nested Parent stacks one more GRM level above this one, so a single
// attach event can raise a whole tree branch (DESIGN.md §7d).
type ParentSpec struct {
	Siblings []SiblingSpec `json:"siblings"`
	// Name is the cluster name this parent registers under at its own
	// parent; required when Parent is set.
	Name string `json:"name,omitempty"`
	// Parent, when set, attaches this parent GRM to a grandparent built
	// from the nested spec — recursively, capped at maxAttachLevels —
	// so borrows chain upward exactly as in the live grmd topology.
	Parent *ParentSpec `json:"parent,omitempty"`
}

// maxAttachLevels caps how many GRM levels one attach event may stack
// above the replayed server — enough for the paper's site/region/root
// topologies while keeping fuzzed bundles from raising server chains of
// arbitrary depth.
const maxAttachLevels = 4

// validate checks one level of a parent spec (and, recursively, the
// levels nested above it). level is 1 for the immediate parent.
func (p *ParentSpec) validate(level int) error {
	if level > maxAttachLevels {
		return fmt.Errorf("parent nesting deeper than %d levels", maxAttachLevels)
	}
	for i, sib := range p.Siblings {
		if sib.Name == "" {
			return fmt.Errorf("level %d sibling %d: empty name", level, i)
		}
		if sib.Capacity < 0 || math.IsNaN(sib.Capacity) || math.IsInf(sib.Capacity, 0) {
			return fmt.Errorf("level %d sibling %d: bad capacity %g", level, i, sib.Capacity)
		}
		if sib.Fraction < 0 || sib.Fraction > 1 || math.IsNaN(sib.Fraction) {
			return fmt.Errorf("level %d sibling %d: bad fraction %g", level, i, sib.Fraction)
		}
	}
	if p.Parent != nil {
		if p.Name == "" {
			return fmt.Errorf("level %d: empty cluster name for nested parent", level)
		}
		return p.Parent.validate(level + 1)
	}
	return nil
}

// levels counts the GRM levels the spec stacks above the replayed
// server (1 = a single parent).
func (p *ParentSpec) levels() int {
	n := 0
	for s := p; s != nil; s = s.Parent {
		n++
	}
	return n
}

// SiblingSpec is one sibling principal at the parent GRM.
type SiblingSpec struct {
	Name     string  `json:"name"`
	Capacity float64 `json:"capacity"`
	// Fraction is the relative share the sibling grants the attaching
	// cluster (0 = none).
	Fraction float64 `json:"fraction,omitempty"`
}

// Event is one line of events.jsonl: a timestamped GRM operation. T is
// the offset in virtual milliseconds from the bundle start and must be
// non-decreasing; replay advances the virtual clock to each event's T
// before executing it (reaping expired leases when the clock moved), so
// recorded wall-time gaps become deterministic virtual-time gaps.
type Event struct {
	T  int64  `json:"t"`
	Op string `json:"op"`
	// P is the acting principal (ignored by register, which creates or
	// rebinds one, and attach).
	P int `json:"p,omitempty"`
	// Name and Capacity parameterize register (principal identity) and
	// attach (the cluster's name at the parent).
	Name     string  `json:"name,omitempty"`
	Capacity float64 `json:"capacity,omitempty"`
	// V is the reported availability (report).
	V float64 `json:"v,omitempty"`
	// To, Fraction, Quantity parameterize share.
	To       int     `json:"to,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Quantity float64 `json:"quantity,omitempty"`
	// Ticket names the agreement to revoke.
	Ticket int `json:"ticket,omitempty"`
	// Amount is the allocation request (alloc).
	Amount float64 `json:"amount,omitempty"`
	// Lease names the lease to release or renew.
	Lease int `json:"lease,omitempty"`
	// Parent describes the parent GRM an attach event builds.
	Parent *ParentSpec `json:"parent,omitempty"`
}

// Outcome is one line of expected.jsonl: the checkpoint for event index
// I. Only present fields are compared, so expectations can be sparse;
// bundles written by the recorder or by rebless pin every field the
// replay can observe. Err empty means the operation must succeed; "*"
// accepts any error; anything else must match the error text exactly.
type Outcome struct {
	I   int    `json:"i"`
	Err string `json:"err,omitempty"`
	// Principal is the id assigned by register / bound at attach.
	Principal *int `json:"principal,omitempty"`
	// Ticket is the agreement token returned by share.
	Ticket *int `json:"ticket,omitempty"`
	// Takes, Theta, Lease are the allocation decision.
	Takes []float64 `json:"takes,omitempty"`
	Theta *float64  `json:"theta,omitempty"`
	Lease *int      `json:"lease,omitempty"`
	// TTLMS is the renewed time-to-live returned by renew.
	TTLMS *int64 `json:"ttl_ms,omitempty"`
	// Reaped is the number of leases an advance op reclaimed.
	Reaped *int `json:"reaped,omitempty"`
	// Avail and Leases checkpoint the server books after the operation.
	Avail  []float64 `json:"avail,omitempty"`
	Leases *int      `json:"leases,omitempty"`
	// ParentAvail and ParentLeases checkpoint the parent GRM's books
	// (present only while a parent is attached).
	ParentAvail  []float64 `json:"parent_avail,omitempty"`
	ParentLeases *int      `json:"parent_leases,omitempty"`
}

// validOps is the closed vocabulary of event operations.
var validOps = map[string]bool{
	OpRegister: true, OpReport: true, OpShare: true, OpRevoke: true,
	OpAlloc: true, OpRelease: true, OpRenew: true, OpKill: true,
	OpAdvance: true, OpAttach: true,
}

// Validate checks one event's internal consistency (field presence and
// ranges; cross-event checks like principal existence happen at replay).
func (e *Event) Validate() error {
	if e.T < 0 {
		return fmt.Errorf("negative timestamp %d", e.T)
	}
	if !validOps[e.Op] {
		return fmt.Errorf("unknown op %q", e.Op)
	}
	if e.P < 0 {
		return fmt.Errorf("%s: negative principal %d", e.Op, e.P)
	}
	switch e.Op {
	case OpRegister:
		if e.Name == "" {
			return fmt.Errorf("register: empty name")
		}
		if e.Capacity < 0 || math.IsNaN(e.Capacity) || math.IsInf(e.Capacity, 0) {
			return fmt.Errorf("register: bad capacity %g", e.Capacity)
		}
	case OpReport:
		if e.V < 0 || math.IsNaN(e.V) || math.IsInf(e.V, 0) {
			return fmt.Errorf("report: bad availability %g", e.V)
		}
	case OpShare:
		if e.To < 0 {
			return fmt.Errorf("share: negative target %d", e.To)
		}
		rel, abs := e.Fraction != 0, e.Quantity != 0
		if rel == abs {
			return fmt.Errorf("share: exactly one of fraction/quantity must be set")
		}
		if e.Fraction < 0 || e.Fraction > 1 || math.IsNaN(e.Fraction) {
			return fmt.Errorf("share: bad fraction %g", e.Fraction)
		}
		if e.Quantity < 0 || math.IsNaN(e.Quantity) || math.IsInf(e.Quantity, 0) {
			return fmt.Errorf("share: bad quantity %g", e.Quantity)
		}
	case OpRevoke:
		if e.Ticket < 0 {
			return fmt.Errorf("revoke: negative ticket %d", e.Ticket)
		}
	case OpAlloc:
		if math.IsNaN(e.Amount) || math.IsInf(e.Amount, 0) {
			return fmt.Errorf("alloc: bad amount %g", e.Amount)
		}
	case OpRelease, OpRenew:
		if e.Lease < 0 {
			return fmt.Errorf("%s: negative lease %d", e.Op, e.Lease)
		}
	case OpAttach:
		if e.Name == "" {
			return fmt.Errorf("attach: empty cluster name")
		}
		if e.Parent == nil {
			return fmt.Errorf("attach: missing parent spec")
		}
		if err := e.Parent.validate(1); err != nil {
			return fmt.Errorf("attach: %w", err)
		}
	}
	return nil
}

// describe renders an event compactly for traces and divergence reports.
func (e *Event) describe() string {
	switch e.Op {
	case OpRegister:
		return fmt.Sprintf("register %q cap=%s", e.Name, ftoa(e.Capacity))
	case OpReport:
		return fmt.Sprintf("report p%d %s", e.P, ftoa(e.V))
	case OpShare:
		if e.Fraction != 0 {
			return fmt.Sprintf("share p%d->p%d frac=%s", e.P, e.To, ftoa(e.Fraction))
		}
		return fmt.Sprintf("share p%d->p%d qty=%s", e.P, e.To, ftoa(e.Quantity))
	case OpRevoke:
		return fmt.Sprintf("revoke ticket=%d", e.Ticket)
	case OpAlloc:
		return fmt.Sprintf("alloc p%d %s", e.P, ftoa(e.Amount))
	case OpRelease:
		return fmt.Sprintf("release lease=%d", e.Lease)
	case OpRenew:
		return fmt.Sprintf("renew lease=%d", e.Lease)
	case OpKill:
		return fmt.Sprintf("kill p%d", e.P)
	case OpAdvance:
		return "advance"
	case OpAttach:
		if lv := e.Parent.levels(); lv > 1 {
			return fmt.Sprintf("attach %q siblings=%d levels=%d", e.Name, len(e.Parent.Siblings), lv)
		}
		return fmt.Sprintf("attach %q siblings=%d", e.Name, len(e.Parent.Siblings))
	default:
		return e.Op
	}
}

// describeOutcome renders a checkpoint deterministically (fixed field
// order) so two identical outcomes always render to identical bytes.
func describeOutcome(o *Outcome) string {
	if o == nil {
		return "unchecked"
	}
	var parts []string
	if o.Err != "" {
		parts = append(parts, fmt.Sprintf("err=%q", o.Err))
	}
	if o.Principal != nil {
		parts = append(parts, fmt.Sprintf("principal=%d", *o.Principal))
	}
	if o.Ticket != nil {
		parts = append(parts, fmt.Sprintf("ticket=%d", *o.Ticket))
	}
	if o.Takes != nil {
		parts = append(parts, "takes="+fmtVec(o.Takes))
	}
	if o.Theta != nil {
		parts = append(parts, "theta="+ftoa(*o.Theta))
	}
	if o.Lease != nil {
		parts = append(parts, fmt.Sprintf("lease=%d", *o.Lease))
	}
	if o.TTLMS != nil {
		parts = append(parts, fmt.Sprintf("ttl=%dms", *o.TTLMS))
	}
	if o.Reaped != nil {
		parts = append(parts, fmt.Sprintf("reaped=%d", *o.Reaped))
	}
	if o.Avail != nil {
		parts = append(parts, "avail="+fmtVec(o.Avail))
	}
	if o.Leases != nil {
		parts = append(parts, fmt.Sprintf("leases=%d", *o.Leases))
	}
	if o.ParentAvail != nil {
		parts = append(parts, "parent_avail="+fmtVec(o.ParentAvail))
	}
	if o.ParentLeases != nil {
		parts = append(parts, fmt.Sprintf("parent_leases=%d", *o.ParentLeases))
	}
	if len(parts) == 0 {
		return "ok"
	}
	return strings.Join(parts, " ")
}

// renderLine formats one trace line: the event and its checkpoint. The
// replay trace renders actual outcomes, BundleTrace renders expected
// ones; the two are byte-identical exactly when the replay diverged
// nowhere — the property the record→replay round-trip test pins.
func renderLine(i int, t int64, ev *Event, out *Outcome) string {
	return fmt.Sprintf("%4d +%s %s | %s", i, msDur(t), ev.describe(), describeOutcome(out))
}

// msDur renders a millisecond offset as a duration.
func msDur(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// ftoa renders a float the way the trace and the divergence report show
// values: shortest representation that round-trips.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// fmtVec renders a float vector compactly and stably.
func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = ftoa(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
