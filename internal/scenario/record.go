package scenario

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/grm"
	"repro/internal/modeltest"
)

// Recorder captures live GRM traffic into a bundle. Install it with
// grm.Server.SetTap (or grmd -record / modeltest ClusterOptions.Tap): it
// turns every dispatched request/response pair into an event line plus a
// densely blessed outcome, stamped with the virtual-or-wall time offset
// since the first captured operation.
//
// The tap runs outside the server lock, so under concurrent clients the
// capture order is one valid serialization of the run, not necessarily
// the one a replay reproduces — rebless recorded bundles whose traffic
// was concurrent. Single-client recordings (the modeltest schedule,
// a scripted grmd session) replay exactly.
type Recorder struct {
	mu      sync.Mutex
	meta    Meta
	started bool
	start   time.Time
	lastT   int64
	events  []Event
	actual  map[int]*Outcome
}

// NewRecorder starts an empty recording. The meta's Format, Created and
// Events fields are managed by the recorder; the caller sets identity
// and replay configuration (Name, TTLMS, Level, Approx).
func NewRecorder(meta Meta) *Recorder {
	return &Recorder{meta: meta, actual: make(map[int]*Outcome)}
}

// Tap is the grm.Tap hook; pass recorder.Tap to SetTap.
func (r *Recorder) Tap(ev grm.TapEvent) {
	event, outcome := translate(ev)
	if event == nil {
		return // ping/caps/peers: no book effects, not part of the schedule
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		r.started = true
		r.start = ev.Now
	}
	t := ev.Now.Sub(r.start).Milliseconds()
	if t < r.lastT {
		// A clock running backwards (or tap-order inversion under
		// concurrency) must not produce an undecodable bundle.
		t = r.lastT
	}
	r.lastT = t
	event.T = t
	r.actual[len(r.events)] = outcome
	r.events = append(r.events, *event)
}

// translate maps one wire exchange to its bundle event and blessed
// outcome, mirroring exactly what a replay of the event would capture.
func translate(ev grm.TapEvent) (*Event, *Outcome) {
	out := &Outcome{Err: clientErrText(ev.Resp)}
	event := &Event{}
	switch req := ev.Req; {
	case req.Register != nil:
		event.Op = OpRegister
		event.Name = req.Register.Name
		event.Capacity = req.Register.Capacity
		if rep := ev.Resp.Register; rep != nil {
			p := rep.Principal
			out.Principal = &p
		}
	case req.Report != nil:
		event.Op = OpReport
		event.P = req.Report.Principal
		event.V = req.Report.Available
	case req.Share != nil:
		event.Op = OpShare
		event.P = req.Share.From
		event.To = req.Share.To
		event.Fraction = req.Share.Fraction
		event.Quantity = req.Share.Quantity
		if rep := ev.Resp.Share; rep != nil {
			t := rep.Ticket
			out.Ticket = &t
		}
	case req.Revoke != nil:
		event.Op = OpRevoke
		event.Ticket = req.Revoke.Ticket
	case req.Alloc != nil:
		event.Op = OpAlloc
		event.P = req.Alloc.Principal
		event.Amount = req.Alloc.Amount
		if rep := ev.Resp.Alloc; rep != nil {
			out.Takes = append([]float64(nil), rep.Takes...)
			theta := rep.Theta
			out.Theta = &theta
			lease := rep.Lease
			out.Lease = &lease
		}
	case req.Release != nil:
		event.Op = OpRelease
		event.Lease = req.Release.Lease
	case req.Renew != nil:
		event.Op = OpRenew
		event.Lease = req.Renew.Lease
		if rep := ev.Resp.Renew; rep != nil {
			ms := rep.TTL.Milliseconds()
			out.TTLMS = &ms
		}
	default:
		return nil, nil
	}
	out.Avail = append([]float64(nil), ev.Avail...)
	leases := ev.Leases
	out.Leases = &leases
	return event, out
}

// clientErrText renders a wire error the way the LRM client surfaces it,
// so recorded expectations match what a replay's client calls return.
func clientErrText(resp *grm.Response) string {
	if resp.Err == "" {
		return ""
	}
	if resp.Code == grm.CodeNoPrincipals {
		return fmt.Sprintf("%s (remote: %s)", grm.ErrNoPrincipals.Error(), resp.Err)
	}
	return resp.Err
}

// Bundle freezes the recording into a bundle ready for WriteBundle. The
// recorder can keep capturing; later Bundle calls include later events.
func (r *Recorder) Bundle() *Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := &Bundle{
		Meta:     r.meta,
		Events:   append([]Event(nil), r.events...),
		Expected: make(map[int]*Outcome, len(r.actual)),
	}
	b.Meta.Format = FormatVersion
	b.Meta.Events = len(b.Events)
	for i, out := range r.actual {
		o := *out
		b.Expected[i] = &o
	}
	return b
}

// Len reports how many events were captured so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// RecordCluster runs one seeded modeltest cluster schedule with a
// recorder tapping the server, returning the captured bundle alongside
// the cluster report. The schedule is single-threaded, so the recording
// replays exactly. `created` stamps the bundle's Created field.
func RecordCluster(opts modeltest.ClusterOptions, created time.Time) (*Bundle, *modeltest.ClusterReport, error) {
	if opts.Steps <= 0 {
		opts.Steps = 100
	}
	if opts.TTL <= 0 {
		opts.TTL = 10 * time.Second
	}
	rec := NewRecorder(Meta{
		Name:    fmt.Sprintf("cluster-seed%d", opts.Seed),
		Title:   fmt.Sprintf("recorded modeltest cluster schedule (seed %d, %d steps)", opts.Seed, opts.Steps),
		Source:  "scenario record (internal/modeltest.RunCluster)",
		Created: created.UTC().Format(time.RFC3339),
		TTLMS:   opts.TTL.Milliseconds(),
	})
	opts.Tap = rec.Tap
	rep, err := modeltest.RunCluster(opts)
	if err != nil {
		return nil, rep, err
	}
	return rec.Bundle(), rep, nil
}
