package scenario

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/grm"
	"repro/internal/modeltest"
)

// TestRecordReplayRoundTrip records seeded modeltest cluster schedules
// through the server tap, replays the captured bundles, and asserts the
// replay trace is byte-identical to the recording — the full
// record→bundle→replay loop, under both wire codecs (and -race when the
// suite runs with it). The trace identity is strict: every event's
// takes, θ, lease tokens, errors, and post-op availability checkpoints
// must reproduce exactly, with reconnect re-registrations and lease
// expiry landing on the same virtual timestamps.
func TestRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("record/replay spins real servers; skipped in -short")
	}
	codecs := map[string]string{"gob": "gob", "binary": "binary"}
	for name, codecName := range codecs {
		codec, err := grm.ParseWireCodec(codecName)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				bundle, rep, err := RecordCluster(modeltest.ClusterOptions{
					Seed:  seed,
					Steps: 40,
					TTL:   10 * time.Second,
					Codec: codec,
				}, time.Unix(0, 0))
				if err != nil {
					t.Fatalf("record: %v", err)
				}
				if rep.Failure != nil {
					t.Fatalf("cluster run failed: %v", rep.Failure)
				}
				if len(bundle.Events) == 0 {
					t.Fatal("recorded no events")
				}

				// The bundle must survive its own codec before replay.
				dir := filepath.Join(t.TempDir(), bundle.Meta.Name)
				if err := WriteBundle(dir, bundle); err != nil {
					t.Fatalf("write: %v", err)
				}
				reread, err := ReadBundle(dir)
				if err != nil {
					t.Fatalf("reread: %v", err)
				}

				res, err := Replay(reread, ReplayOptions{Codec: codec})
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if res.Divergence != nil {
					t.Fatalf("replay diverged from the recording:\n%v", res.Divergence)
				}
				if res.Events != len(reread.Events) {
					t.Fatalf("replay executed %d of %d events", res.Events, len(reread.Events))
				}
				want := reread.Trace()
				if res.Trace != want {
					t.Fatalf("replay trace not byte-identical to the recording\nrecorded:\n%s\nreplayed:\n%s", want, res.Trace)
				}
			})
		}
	}
}

// TestRecorderSkipsReadOnlyOps pins that pings, capacity probes and peer
// listings never enter a recording: they carry no book effects, and the
// modeltest schedule issues Capacities before every allocation — a
// recorded schedule polluted with them would replay fine but bloat
// every bundle.
func TestRecorderSkipsReadOnlyOps(t *testing.T) {
	rec := NewRecorder(Meta{Name: "x"})
	rec.Tap(grm.TapEvent{Req: &grm.Request{Ping: &grm.PingRequest{}}, Resp: &grm.Response{Ping: &grm.PingReply{}}})
	rec.Tap(grm.TapEvent{Req: &grm.Request{Caps: &grm.CapsRequest{}}, Resp: &grm.Response{Caps: &grm.CapsReply{}}})
	rec.Tap(grm.TapEvent{Req: &grm.Request{Peers: &grm.PeersRequest{}}, Resp: &grm.Response{Peers: &grm.PeersReply{}}})
	if n := rec.Len(); n != 0 {
		t.Fatalf("recorder captured %d read-only ops", n)
	}
	rec.Tap(grm.TapEvent{
		Now:  time.Unix(5, 0),
		Req:  &grm.Request{Register: &grm.RegisterRequest{Name: "a", Capacity: 1}},
		Resp: &grm.Response{Register: &grm.RegisterReply{Principal: 0}},
	})
	if n := rec.Len(); n != 1 {
		t.Fatalf("recorder captured %d events, want 1", n)
	}
	b := rec.Bundle()
	if b.Events[0].Op != OpRegister || b.Events[0].T != 0 {
		t.Fatalf("first event %+v, want register at t=0", b.Events[0])
	}
	if out := b.Expected[0]; out == nil || out.Principal == nil || *out.Principal != 0 {
		t.Fatalf("register outcome %+v not blessed", b.Expected[0])
	}
}
