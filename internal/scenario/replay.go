package scenario

import (
	"fmt"
	"math"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grm"
	"repro/internal/grm/faultnet"
	"repro/internal/vclock"
)

// ReplayOptions configures one replay run.
type ReplayOptions struct {
	// Codec is the wire codec the replayed LRMs speak.
	Codec grm.WireCodec
	// Bless records the actual outcome of every event into
	// Result.Actual instead of comparing against expectations — the
	// engine behind "scenario rebless" and corpus seeding.
	Bless bool
}

// Divergence pinpoints the first place a replay departed from the
// bundle's expectations.
type Divergence struct {
	// Index is the diverging event's index in events.jsonl.
	Index int
	// Op describes the event that diverged.
	Op string
	// Field names the first mismatching outcome field.
	Field string
	// Expected and Actual render the two values.
	Expected string
	Actual   string
	// Status renders the server's books at the point of divergence.
	Status string
}

// Error formats the divergence as the report verify prints.
func (d *Divergence) Error() string {
	return fmt.Sprintf("event %d (%s): %s: expected %s, got %s\nserver status at divergence:\n%s",
		d.Index, d.Op, d.Field, d.Expected, d.Actual, indent(d.Status))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ")
}

// Result is the outcome of a replay.
type Result struct {
	// Name is the bundle's name.
	Name string
	// Events is how many events executed (all of them unless the replay
	// stopped at a divergence).
	Events int
	// Divergence is the first expectation mismatch, nil when the replay
	// matched everywhere.
	Divergence *Divergence
	// Actual holds the captured outcome of every executed event. In
	// bless mode it is the new expected.jsonl content.
	Actual map[int]*Outcome
	// Trace renders the executed events with their actual outcomes,
	// "unchecked" for events the bundle holds no expectation for. On a
	// clean replay of a densely blessed bundle it is byte-identical to
	// Bundle.Trace().
	Trace string
}

// replayNode is one principal's client-side handle during replay.
type replayNode struct {
	lrm      *grm.LRM
	conns    chan *faultnet.Conn
	lastConn *faultnet.Conn
}

// replayState carries everything a running replay needs.
type replayState struct {
	bundle *Bundle
	opts   ReplayOptions

	vc   *vclock.Virtual
	srv  *grm.Server
	addr string
	// ttlArmed is set once SetLeaseTTL ran (after the first register, so
	// the background reaper never starts and reaping stays explicit).
	ttlArmed bool
	// offset is the virtual time already elapsed, in milliseconds.
	offset int64

	nodes map[int]*replayNode

	// parent federation fixtures (built by an attach event). parentSrv
	// is the immediate parent — the level checkpoints observe;
	// ancestorSrvs holds every GRM the attach raised (immediate parent
	// first when the spec nests, then each level above), all closed on
	// replay exit.
	parentSrv    *grm.Server
	ancestorSrvs []*grm.Server
	parentLRMs   []*grm.LRM
}

// Replay runs the bundle against a fresh grm.Server on a virtual clock
// and compares each event's live outcome against the bundle's
// expectations, stopping at the first divergence. The returned error is
// only for infrastructure failures (listen, dial); expectation
// mismatches land in Result.Divergence.
func Replay(b *Bundle, opts ReplayOptions) (*Result, error) {
	st := &replayState{
		bundle: b,
		opts:   opts,
		vc:     vclock.NewVirtual(time.Unix(1_000_000_000, 0)),
		nodes:  make(map[int]*replayNode),
	}
	st.srv = grm.NewServer(core.Config{Level: b.Meta.Level, Approx: b.Meta.Approx}, nil)
	st.srv.SetClock(st.vc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("scenario: replay listen: %w", err)
	}
	go st.srv.Serve(l)
	defer func() {
		for _, n := range st.nodes {
			n.lrm.Close()
		}
		st.srv.Close()
		for _, lrm := range st.parentLRMs {
			lrm.Close()
		}
		for _, srv := range st.ancestorSrvs {
			srv.Close()
		}
	}()
	st.addr = l.Addr().String()

	res := &Result{Name: b.Meta.Name, Actual: make(map[int]*Outcome)}
	var trace strings.Builder
	for i := range b.Events {
		ev := &b.Events[i]
		st.advanceTo(ev)
		actual := st.execute(ev)
		st.checkpoint(actual)
		res.Events = i + 1
		if opts.Bless || b.Expected[i] != nil {
			res.Actual[i] = actual
			trace.WriteString(renderLine(i, ev.T, ev, actual))
		} else {
			trace.WriteString(renderLine(i, ev.T, ev, nil))
		}
		trace.WriteByte('\n')
		if !opts.Bless {
			if want := b.Expected[i]; want != nil {
				if field, wantS, gotS := diffOutcome(want, actual, b.tolerance()); field != "" {
					res.Divergence = &Divergence{
						Index:    i,
						Op:       ev.describe(),
						Field:    field,
						Expected: wantS,
						Actual:   gotS,
						Status:   st.statusText(),
					}
					break
				}
			}
		}
	}
	res.Trace = trace.String()
	return res, nil
}

// tolerance returns the bundle's float comparison tolerance.
func (b *Bundle) tolerance() float64 {
	if b.Meta.Tolerance > 0 {
		return b.Meta.Tolerance
	}
	return DefaultTolerance
}

// advanceTo moves the virtual clock to the event's timestamp and reaps
// leases that expired in the gap, so virtual time passes exactly as the
// log recorded it. The explicit advance op skips the implicit reap: its
// own counted Reap is the observation.
func (st *replayState) advanceTo(ev *Event) {
	if ev.T > st.offset {
		st.vc.Advance(time.Duration(ev.T-st.offset) * time.Millisecond)
		st.offset = ev.T
		if st.ttlArmed && ev.Op != OpAdvance {
			st.srv.Reap()
		}
	}
}

// dialCfg is the DialConfig replayed LRMs use: fast retries on the
// loopback listener, connections surfaced for kill events.
func (st *replayState) dialCfg(conns chan *faultnet.Conn) grm.DialConfig {
	return grm.DialConfig{
		Timeout:    10 * time.Second,
		RetryMax:   5,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Codec:      st.opts.Codec,
		Dialer:     faultnet.Dialer(nil, conns),
	}
}

// node returns the LRM acting for principal p, falling back to the
// lowest-id node for ops whose wire request names no principal.
func (st *replayState) node(p int) *replayNode {
	if n := st.nodes[p]; n != nil {
		return n
	}
	best := -1
	for id := range st.nodes {
		if best < 0 || id < best {
			best = id
		}
	}
	return st.nodes[best] // nil when no principal registered yet
}

// execute runs one event against the live server and captures its
// observable outcome (checkpoints are added by the caller).
func (st *replayState) execute(ev *Event) *Outcome {
	out := &Outcome{}
	fail := func(err error) *Outcome {
		out.Err = err.Error()
		return out
	}
	switch ev.Op {
	case OpRegister:
		conns := make(chan *faultnet.Conn, 8)
		lrm, err := grm.DialWithConfig(st.addr, ev.Name, ev.Capacity, st.dialCfg(conns))
		if err != nil {
			return fail(err)
		}
		pid := lrm.Principal()
		if old := st.nodes[pid]; old != nil {
			old.lrm.Close()
		}
		st.nodes[pid] = &replayNode{lrm: lrm, conns: conns}
		out.Principal = &pid
		// Arm the lease TTL only now: the register proved Serve already
		// read the zero TTL, so the background reaper stays off and
		// expiry happens only through the replay's explicit Reap calls.
		if !st.ttlArmed && st.bundle.Meta.TTLMS > 0 {
			st.srv.SetLeaseTTL(time.Duration(st.bundle.Meta.TTLMS) * time.Millisecond)
			st.ttlArmed = true
		}
	case OpReport:
		n := st.node(ev.P)
		if n == nil {
			return fail(fmt.Errorf("scenario: report: no principal %d", ev.P))
		}
		if err := n.lrm.Report(ev.V); err != nil {
			return fail(err)
		}
	case OpShare:
		n := st.node(ev.P)
		if n == nil {
			return fail(fmt.Errorf("scenario: share: no principal %d", ev.P))
		}
		var ticket int
		var err error
		if ev.Fraction != 0 {
			ticket, err = n.lrm.ShareRelative(ev.To, ev.Fraction)
		} else {
			ticket, err = n.lrm.ShareAbsolute(ev.To, ev.Quantity)
		}
		if err != nil {
			return fail(err)
		}
		out.Ticket = &ticket
	case OpRevoke:
		n := st.node(ev.P)
		if n == nil {
			return fail(fmt.Errorf("scenario: revoke: no principal registered"))
		}
		if err := n.lrm.Revoke(ev.Ticket); err != nil {
			return fail(err)
		}
	case OpAlloc:
		n := st.node(ev.P)
		if n == nil {
			return fail(fmt.Errorf("scenario: alloc: no principal %d", ev.P))
		}
		reply, err := n.lrm.Allocate(ev.Amount)
		if err != nil {
			return fail(err)
		}
		out.Takes = append([]float64(nil), reply.Takes...)
		theta := reply.Theta
		out.Theta = &theta
		lease := reply.Lease
		out.Lease = &lease
	case OpRelease:
		n := st.node(ev.P)
		if n == nil {
			return fail(fmt.Errorf("scenario: release: no principal registered"))
		}
		if err := n.lrm.Release(ev.Lease); err != nil {
			return fail(err)
		}
	case OpRenew:
		n := st.node(ev.P)
		if n == nil {
			return fail(fmt.Errorf("scenario: renew: no principal registered"))
		}
		ttl, err := n.lrm.Renew(ev.Lease)
		if err != nil {
			return fail(err)
		}
		ms := ttl.Milliseconds()
		out.TTLMS = &ms
	case OpKill:
		n := st.nodes[ev.P]
		if n == nil {
			return fail(fmt.Errorf("scenario: kill: no principal %d", ev.P))
		}
		for {
			select {
			case c := <-n.conns:
				n.lastConn = c
			default:
				goto drained
			}
		}
	drained:
		if n.lastConn != nil {
			n.lastConn.Kill()
		}
		// Ping forces the transparent reconnect (re-register + report
		// replay) right now, so its book effects land at this event
		// instead of smearing into the next one.
		if err := n.lrm.Ping(); err != nil {
			return fail(err)
		}
	case OpAdvance:
		// advanceTo already moved the clock to this event's T; the
		// counted Reap is the whole operation.
		reaped := st.srv.Reap()
		out.Reaped = &reaped
	case OpAttach:
		if err := st.attach(ev, out); err != nil {
			return fail(err)
		}
	}
	return out
}

// attach builds the in-process GRM tree an attach event describes:
// sibling principals registered at the (possibly multi-level) parent
// chain, the replayed cluster attached as one more LRM at the lowest
// level, and each sibling's relative share granted to the cluster below
// it — the borrow path of federation.go, wholly inside the replay.
func (st *replayState) attach(ev *Event, out *Outcome) error {
	if st.parentSrv != nil {
		return fmt.Errorf("scenario: attach: parent already attached")
	}
	parent, paddr, sibs, err := st.buildLevel(ev.Parent)
	if err != nil {
		return err
	}
	st.parentSrv = parent
	if err := st.srv.AttachParentConfig(paddr, ev.Name, st.dialCfg(nil)); err != nil {
		return fmt.Errorf("scenario: attach: %w", err)
	}
	clusterPid := st.srv.Parent().Principal()
	out.Principal = &clusterPid
	return st.grantSiblingShares(ev.Parent, sibs, clusterPid)
}

// buildLevel raises the GRM one ParentSpec level describes — its
// sibling principals and, recursively, the grandparent chain above it,
// with each level attached to the one above as a single cluster LRM and
// granted its siblings' shares. Returns the level's server, its listen
// address, and the sibling LRMs so the caller can grant their shares to
// the cluster attaching from below.
func (st *replayState) buildLevel(spec *ParentSpec) (*grm.Server, string, []*grm.LRM, error) {
	srv := grm.NewServer(core.Config{}, nil)
	// Every ancestor shares the replay's virtual clock but keeps TTL
	// zero: ancestor-side leases (the borrows) never expire on their
	// own, so replay determinism needs no reaper above the leaf.
	srv.SetClock(st.vc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, fmt.Errorf("scenario: attach listen: %w", err)
	}
	go srv.Serve(l)
	st.ancestorSrvs = append(st.ancestorSrvs, srv)
	addr := l.Addr().String()

	sibs := make([]*grm.LRM, 0, len(spec.Siblings))
	for _, sib := range spec.Siblings {
		lrm, err := grm.DialWithConfig(addr, sib.Name, sib.Capacity, st.dialCfg(nil))
		if err != nil {
			return nil, "", nil, fmt.Errorf("scenario: attach sibling %q: %w", sib.Name, err)
		}
		st.parentLRMs = append(st.parentLRMs, lrm)
		sibs = append(sibs, lrm)
	}
	if spec.Parent != nil {
		_, gaddr, gsibs, err := st.buildLevel(spec.Parent)
		if err != nil {
			return nil, "", nil, err
		}
		if err := srv.AttachParentConfig(gaddr, spec.Name, st.dialCfg(nil)); err != nil {
			return nil, "", nil, fmt.Errorf("scenario: attach %q: %w", spec.Name, err)
		}
		pid := srv.Parent().Principal()
		if err := st.grantSiblingShares(spec.Parent, gsibs, pid); err != nil {
			return nil, "", nil, err
		}
	}
	return srv, addr, sibs, nil
}

// grantSiblingShares issues each sibling's relative share to the
// cluster principal that just attached at their level.
func (st *replayState) grantSiblingShares(spec *ParentSpec, sibs []*grm.LRM, clusterPid int) error {
	for i, sib := range spec.Siblings {
		if sib.Fraction == 0 {
			continue
		}
		if _, err := sibs[i].ShareRelative(clusterPid, sib.Fraction); err != nil {
			return fmt.Errorf("scenario: attach share %q: %w", sib.Name, err)
		}
	}
	return nil
}

// checkpoint captures the post-operation books into the outcome.
func (st *replayState) checkpoint(out *Outcome) {
	if status, err := st.srv.Status(); err == nil {
		out.Avail = availVector(status)
		leases := status.Leases
		out.Leases = &leases
	}
	if st.parentSrv != nil {
		if status, err := st.parentSrv.Status(); err == nil {
			out.ParentAvail = availVector(status)
			leases := status.Leases
			out.ParentLeases = &leases
		}
	}
}

// availVector extracts the availability vector indexed by principal id.
func availVector(status *grm.Status) []float64 {
	v := make([]float64, len(status.Principals))
	for _, p := range status.Principals {
		v[p.Principal] = p.Available
	}
	return v
}

// statusText renders the server's books for the divergence report.
func (st *replayState) statusText() string {
	status, err := st.srv.Status()
	if err != nil {
		return fmt.Sprintf("status unavailable: %v", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "leases=%d agreements=%d\n", status.Leases, status.Agreements)
	for _, p := range status.Principals {
		fmt.Fprintf(&sb, "p%d %q avail=%s reported=%s capacity=%s\n",
			p.Principal, p.Name, ftoa(p.Available), ftoa(p.Reported), ftoa(p.Capacity))
	}
	if st.parentSrv != nil {
		if pstat, err := st.parentSrv.Status(); err == nil {
			fmt.Fprintf(&sb, "parent: leases=%d avail=%s\n", pstat.Leases, fmtVec(availVector(pstat)))
		}
	}
	return sb.String()
}

// diffOutcome compares an expected checkpoint against the actual
// outcome, field by field in a fixed order, and returns the first
// mismatch (empty field name when they agree). Only fields the
// expectation sets are compared.
func diffOutcome(want, got *Outcome, tol float64) (field, wantS, gotS string) {
	switch {
	case want.Err == "" && got.Err != "":
		return "err", "success", fmt.Sprintf("%q", got.Err)
	case want.Err == "*" && got.Err == "":
		return "err", "any error", "success"
	case want.Err != "" && want.Err != "*" && want.Err != got.Err:
		return "err", fmt.Sprintf("%q", want.Err), fmt.Sprintf("%q", got.Err)
	}
	if want.Principal != nil && (got.Principal == nil || *want.Principal != *got.Principal) {
		return "principal", fmt.Sprint(*want.Principal), optInt(got.Principal)
	}
	if want.Ticket != nil && (got.Ticket == nil || *want.Ticket != *got.Ticket) {
		return "ticket", fmt.Sprint(*want.Ticket), optInt(got.Ticket)
	}
	if want.Takes != nil {
		if got.Takes == nil || !vecClose(want.Takes, got.Takes, tol) {
			return "takes", fmtVec(want.Takes), optVec(got.Takes)
		}
	}
	if want.Theta != nil {
		if got.Theta == nil || !close_(*want.Theta, *got.Theta, tol) {
			return "theta", ftoa(*want.Theta), optFloat(got.Theta)
		}
	}
	if want.Lease != nil && (got.Lease == nil || *want.Lease != *got.Lease) {
		return "lease", fmt.Sprint(*want.Lease), optInt(got.Lease)
	}
	if want.TTLMS != nil && (got.TTLMS == nil || *want.TTLMS != *got.TTLMS) {
		wantS = fmt.Sprint(*want.TTLMS)
		if got.TTLMS != nil {
			return "ttl_ms", wantS, fmt.Sprint(*got.TTLMS)
		}
		return "ttl_ms", wantS, "absent"
	}
	if want.Reaped != nil && (got.Reaped == nil || *want.Reaped != *got.Reaped) {
		return "reaped", fmt.Sprint(*want.Reaped), optInt(got.Reaped)
	}
	if want.Avail != nil {
		if got.Avail == nil || !vecClose(want.Avail, got.Avail, tol) {
			return "avail", fmtVec(want.Avail), optVec(got.Avail)
		}
	}
	if want.Leases != nil && (got.Leases == nil || *want.Leases != *got.Leases) {
		return "leases", fmt.Sprint(*want.Leases), optInt(got.Leases)
	}
	if want.ParentAvail != nil {
		if got.ParentAvail == nil || !vecClose(want.ParentAvail, got.ParentAvail, tol) {
			return "parent_avail", fmtVec(want.ParentAvail), optVec(got.ParentAvail)
		}
	}
	if want.ParentLeases != nil && (got.ParentLeases == nil || *want.ParentLeases != *got.ParentLeases) {
		return "parent_leases", fmt.Sprint(*want.ParentLeases), optInt(got.ParentLeases)
	}
	return "", "", ""
}

func close_(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !close_(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func optInt(p *int) string {
	if p == nil {
		return "absent"
	}
	return fmt.Sprint(*p)
}

func optFloat(p *float64) string {
	if p == nil {
		return "absent"
	}
	return ftoa(*p)
}

func optVec(v []float64) string {
	if v == nil {
		return "absent"
	}
	return fmtVec(v)
}
