package scenario

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Bundle is a fully decoded scenario: metadata, the event log, and the
// expected outcomes keyed sparsely by event index.
type Bundle struct {
	Meta     Meta
	Events   []Event
	Expected map[int]*Outcome
	// Dir is where the bundle was read from ("" for in-memory bundles).
	Dir string
}

// File names inside a bundle directory.
const (
	MetaFile     = "meta.json"
	EventsFile   = "events.jsonl"
	ExpectedFile = "expected.jsonl"
)

// DecodeBundle parses the three bundle files from raw bytes, applying
// every structural check: format version, well-formed JSON on each line,
// non-decreasing timestamps, known operations, the meta event-count
// cross-check (truncated or padded logs fail), and strictly increasing
// in-range expectation indices. It never panics on hostile input — the
// property FuzzBundleDecode pins.
func DecodeBundle(metaRaw, eventsRaw, expectedRaw []byte) (*Bundle, error) {
	b := &Bundle{Expected: make(map[int]*Outcome)}

	dec := json.NewDecoder(bytes.NewReader(metaRaw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b.Meta); err != nil {
		return nil, fmt.Errorf("%s: %w", MetaFile, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after metadata object", MetaFile)
	}
	if b.Meta.Format != FormatVersion {
		return nil, fmt.Errorf("%s: unsupported format %d (want %d)", MetaFile, b.Meta.Format, FormatVersion)
	}
	if b.Meta.Name == "" {
		return nil, fmt.Errorf("%s: empty name", MetaFile)
	}
	if b.Meta.Events < 0 {
		return nil, fmt.Errorf("%s: negative event count %d", MetaFile, b.Meta.Events)
	}
	if b.Meta.TTLMS < 0 {
		return nil, fmt.Errorf("%s: negative ttl_ms %d", MetaFile, b.Meta.TTLMS)
	}
	if b.Meta.Tolerance < 0 {
		return nil, fmt.Errorf("%s: negative tolerance %g", MetaFile, b.Meta.Tolerance)
	}

	var lastT int64
	if err := eachLine(eventsRaw, func(lineno int, line []byte) error {
		var ev Event
		if err := decodeStrict(line, &ev); err != nil {
			return fmt.Errorf("%s:%d: %w", EventsFile, lineno, err)
		}
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("%s:%d: %w", EventsFile, lineno, err)
		}
		if ev.T < lastT {
			return fmt.Errorf("%s:%d: timestamp %d out of order (previous %d)", EventsFile, lineno, ev.T, lastT)
		}
		lastT = ev.T
		b.Events = append(b.Events, ev)
		return nil
	}); err != nil {
		return nil, err
	}
	if len(b.Events) != b.Meta.Events {
		return nil, fmt.Errorf("%s: %d events but meta.json declares %d (truncated or stale log)",
			EventsFile, len(b.Events), b.Meta.Events)
	}

	lastI := -1
	if err := eachLine(expectedRaw, func(lineno int, line []byte) error {
		var out Outcome
		if err := decodeStrict(line, &out); err != nil {
			return fmt.Errorf("%s:%d: %w", ExpectedFile, lineno, err)
		}
		if out.I <= lastI {
			return fmt.Errorf("%s:%d: index %d out of order (previous %d)", ExpectedFile, lineno, out.I, lastI)
		}
		if out.I >= len(b.Events) {
			return fmt.Errorf("%s:%d: index %d beyond last event %d", ExpectedFile, lineno, out.I, len(b.Events)-1)
		}
		lastI = out.I
		o := out
		b.Expected[out.I] = &o
		return nil
	}); err != nil {
		return nil, err
	}
	return b, nil
}

// decodeStrict unmarshals one JSONL line, rejecting unknown fields and
// trailing garbage after the object.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

// eachLine feeds non-empty lines to fn with 1-based line numbers.
func eachLine(raw []byte, fn func(lineno int, line []byte) error) error {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(lineno, line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadBundle loads and decodes the bundle stored in dir.
func ReadBundle(dir string) (*Bundle, error) {
	metaRaw, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, err
	}
	eventsRaw, err := os.ReadFile(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, err
	}
	// expected.jsonl is optional on disk: a freshly recorded bundle may
	// not have been blessed yet.
	expectedRaw, err := os.ReadFile(filepath.Join(dir, ExpectedFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	b, err := DecodeBundle(metaRaw, eventsRaw, expectedRaw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	b.Dir = dir
	return b, nil
}

// WriteBundle writes the bundle's three files into dir, creating it if
// needed. Meta.Events is forced to match the log before writing so
// written bundles always pass their own cross-check.
func WriteBundle(dir string, b *Bundle) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b.Meta.Events = len(b.Events)
	if b.Meta.Format == 0 {
		b.Meta.Format = FormatVersion
	}
	metaRaw, err := json.MarshalIndent(&b.Meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, MetaFile), append(metaRaw, '\n'), 0o644); err != nil {
		return err
	}

	var events bytes.Buffer
	for i := range b.Events {
		line, err := json.Marshal(&b.Events[i])
		if err != nil {
			return err
		}
		events.Write(line)
		events.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, EventsFile), events.Bytes(), 0o644); err != nil {
		return err
	}

	var expected bytes.Buffer
	for _, i := range sortedIndices(b.Expected) {
		// The map key is authoritative; stamp it into the line so decoded
		// indices round-trip no matter how the outcome was produced.
		out := *b.Expected[i]
		out.I = i
		line, err := json.Marshal(&out)
		if err != nil {
			return err
		}
		expected.Write(line)
		expected.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, ExpectedFile), expected.Bytes(), 0o644)
}

// sortedIndices returns the expectation indices in ascending order.
func sortedIndices(m map[int]*Outcome) []int {
	idx := make([]int, 0, len(m))
	for i := range m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Trace renders the bundle's expected outcomes as a replay trace — the
// reference half of the byte-identity property Result.Trace satisfies
// when a replay diverges nowhere.
func (b *Bundle) Trace() string {
	var sb strings.Builder
	for i := range b.Events {
		sb.WriteString(renderLine(i, b.Events[i].T, &b.Events[i], b.Expected[i]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Discover expands paths into bundle directories. A path ending in
// "/..." is walked recursively for directories containing meta.json;
// other paths must themselves be bundle directories.
func Discover(paths []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range paths {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			root := filepath.Clean(rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if _, statErr := os.Stat(filepath.Join(path, MetaFile)); statErr == nil {
						add(path)
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if _, err := os.Stat(filepath.Join(p, MetaFile)); err != nil {
			return nil, fmt.Errorf("%s: not a scenario bundle: %w", p, err)
		}
		add(p)
	}
	sort.Strings(dirs)
	return dirs, nil
}
