package scenario

import (
	"fmt"
	"path/filepath"

	"repro/internal/grm"
)

// This file builds the checked-in corpus under scenarios/: each builder
// lays out the event schedule of one scenario, and Seed blesses it by
// replaying against a live server — the recorded actual outcomes become
// the bundle's expected.jsonl. Re-run via `scenario seed` after an
// intentional behavior change, and review the diff like any golden file.

// seedBuilders enumerates the corpus. Order is the inventory order in
// SCENARIOS.md.
var seedBuilders = []func() *Bundle{
	ispTenProxy,
	taxonomyLoop,
	taxonomyDecay,
	federationChurn,
	treeThreeLevel,
	voCPUSharing,
	fairnessStress,
	leaseChurn,
}

// Seed builds, blesses, and writes the full corpus under dir. The bless
// replay runs with the given codec; the corpus itself is codec-agnostic
// (CI verifies it under both).
func Seed(dir string, codec grm.WireCodec) ([]string, error) {
	var written []string
	for _, build := range seedBuilders {
		b := build()
		res, err := Replay(b, ReplayOptions{Codec: codec, Bless: true})
		if err != nil {
			return written, fmt.Errorf("scenario: seed %s: %w", b.Meta.Name, err)
		}
		b.Expected = res.Actual
		out := filepath.Join(dir, b.Meta.Name)
		if err := WriteBundle(out, b); err != nil {
			return written, fmt.Errorf("scenario: seed %s: %w", b.Meta.Name, err)
		}
		written = append(written, out)
	}
	return written, nil
}

// builder accumulates a schedule.
type builder struct {
	meta   Meta
	events []Event
}

func newBuilder(name, title, source string) *builder {
	return &builder{meta: Meta{
		Format: FormatVersion,
		Name:   name,
		Title:  title,
		Source: source,
	}}
}

func (b *builder) add(t int64, ev Event) {
	ev.T = t
	b.events = append(b.events, ev)
}

func (b *builder) reg(t int64, name string, capacity float64) {
	b.add(t, Event{Op: OpRegister, Name: name, Capacity: capacity})
}
func (b *builder) rep(t int64, p int, v float64) {
	b.add(t, Event{Op: OpReport, P: p, V: v})
}
func (b *builder) shr(t int64, from, to int, fraction float64) {
	b.add(t, Event{Op: OpShare, P: from, To: to, Fraction: fraction})
}
func (b *builder) sha(t int64, from, to int, quantity float64) {
	b.add(t, Event{Op: OpShare, P: from, To: to, Quantity: quantity})
}
func (b *builder) rvk(t int64, ticket int) {
	b.add(t, Event{Op: OpRevoke, Ticket: ticket})
}
func (b *builder) alc(t int64, p int, amount float64) {
	b.add(t, Event{Op: OpAlloc, P: p, Amount: amount})
}
func (b *builder) rel(t int64, lease int) {
	b.add(t, Event{Op: OpRelease, Lease: lease})
}
func (b *builder) ren(t int64, lease int) {
	b.add(t, Event{Op: OpRenew, Lease: lease})
}
func (b *builder) kil(t int64, p int) {
	b.add(t, Event{Op: OpKill, P: p})
}
func (b *builder) adv(t int64) {
	b.add(t, Event{Op: OpAdvance})
}
func (b *builder) att(t int64, name string, siblings ...SiblingSpec) {
	b.add(t, Event{Op: OpAttach, Name: name, Parent: &ParentSpec{Siblings: siblings}})
}

func (b *builder) bundle() *Bundle {
	b.meta.Events = len(b.events)
	return &Bundle{Meta: b.meta, Events: b.events, Expected: map[int]*Outcome{}}
}

// ispTenProxy is the paper's case study: 10 ISP proxies in a complete
// agreement graph, each sharing 10% with every other (Figures 6–8). The
// first allocation wave runs at a known availability vector so the
// golden test can cross-check takes and θ against the same
// sim.CompletePlanner(10, 0.1) pipeline proxysim uses.
func ispTenProxy() *Bundle {
	b := newBuilder("isp-10proxy",
		"10-proxy ISP complete graph, 10% pairwise shares",
		"paper §4 case study (Figures 6–8); cross-checked against sim.CompletePlanner")
	const n = 10
	for i := 0; i < n; i++ {
		b.reg(0, fmt.Sprintf("isp%d", i), 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.shr(0, i, j, 0.1)
			}
		}
	}
	// Morning: availability rises west to east.
	for i := 0; i < n; i++ {
		b.rep(1000, i, 0.2+0.08*float64(i))
	}
	b.alc(2000, 0, 0.5) // lease 1 — the golden-checked allocation
	b.alc(2100, 5, 0.8) // lease 2
	b.alc(2200, 9, 0.6) // lease 3
	b.rel(3000, 1)
	b.rel(3100, 2)
	// Evening: the tide reverses.
	for i := 0; i < n; i++ {
		b.rep(4000, i, 0.9-0.05*float64(i))
	}
	b.alc(5000, 3, 1.2) // lease 4
	b.rel(6000, 3)
	b.rel(6100, 4)
	return b.bundle()
}

// taxonomyLoop is DESIGN.md's Figure 9 structure: a cyclic loop where
// ISP i shares 80% with its skip-1 neighbor, replayed at transitivity
// level 2 so enforcement stops two hops around the ring.
func taxonomyLoop() *Bundle {
	b := newBuilder("taxonomy-loop",
		"cyclic loop, 80% skip-1 shares, transitivity level 2",
		"DESIGN.md taxonomy (Figure 9: loop structures)")
	b.meta.Level = 2
	const n = 10
	for i := 0; i < n; i++ {
		b.reg(0, fmt.Sprintf("ISP%d", i), 1)
	}
	for i := 0; i < n; i++ {
		b.shr(0, i, (i+1)%n, 0.8)
	}
	// Half the ring is idle, half busy: the busy side reaches two hops
	// upstream and no farther.
	for i := 0; i < n; i++ {
		v := 1.0
		if i >= n/2 {
			v = 0.1
		}
		b.rep(1000, i, v)
	}
	// p5 sits just downstream of the idle half: level 2 reaches p4 and
	// p3, so a pull far past its own 0.1 succeeds.
	b.alc(2000, 5, 0.9) // lease 1
	b.alc(2100, 6, 0.6) // lease 2: one idle hop left within reach
	// p7's two-hop upstream (p5, p6) is all busy: the idle capacity
	// three hops away is invisible at level 2, so this is refused.
	b.alc(2200, 7, 0.9)
	b.rel(3000, 1)
	return b.bundle()
}

// taxonomyDecay is DESIGN.md's Figure 13 structure: a complete graph
// whose share fractions decay with circular time-zone distance
// (20%, 10%, 5%, then 3% for everyone farther).
func taxonomyDecay() *Bundle {
	b := newBuilder("taxonomy-decay",
		"distance-decay complete graph (20/10/5/3% by time-zone distance)",
		"DESIGN.md taxonomy (Figure 13: distance decay)")
	const n = 8
	decay := []float64{0.20, 0.10, 0.05, 0.03}
	for i := 0; i < n; i++ {
		b.reg(0, fmt.Sprintf("tz%d", i), 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := i - j
			if d < 0 {
				d = -d
			}
			if n-d < d {
				d = n - d
			}
			idx := d - 1
			if idx >= len(decay) {
				idx = len(decay) - 1
			}
			b.shr(0, i, j, decay[idx])
		}
	}
	for i := 0; i < n; i++ {
		b.rep(1000, i, 0.5)
	}
	b.alc(2000, 0, 0.7) // lease 1: mostly near neighbors
	b.alc(2100, 4, 0.7) // lease 2: the antipode draws symmetrically
	b.rel(3000, 1)
	b.rel(3100, 2)
	return b.bundle()
}

// federationChurn exercises the multi-level GRM architecture: a
// two-node cluster attaches to a parent GRM with two sibling clusters,
// borrows when local capacity falls short, repays on release, and
// repays again when a borrow-backed lease expires.
func federationChurn() *Bundle {
	b := newBuilder("federation-churn",
		"federation borrow/repay churn through a parent GRM",
		"DESIGN.md §7b layered GRM; paper §3 multi-level architecture")
	b.meta.TTLMS = 10_000
	b.reg(0, "node0", 2)
	b.reg(0, "node1", 2)
	b.att(500, "cluster",
		SiblingSpec{Name: "sib0", Capacity: 5, Fraction: 0.5},
		SiblingSpec{Name: "sib1", Capacity: 3, Fraction: 0.25})
	b.alc(1000, 0, 3)   // beyond local capacity: borrow 1 from the parent (lease 1)
	b.rel(2000, 1)      // release repays the parent lease
	b.alc(3000, 1, 3.5) // borrow again (lease 2)
	b.ren(4000, 2)      // renewed: expires at t=14000
	b.adv(15_000)       // expiry reaps the lease and repays the borrow
	b.rep(15_500, 0, 1.5)
	return b.bundle()
}

// treeThreeLevel stacks the full three-level GRM tree inside one replay:
// a two-node leaf cluster under a capacity-poor mid-level region, itself
// attached to a root with lendable capacity. A leaf deficit larger than
// the region can cover forces the borrow to chain leaf→region→root, and
// release and lease expiry repay back down the same chain.
func treeThreeLevel() *Bundle {
	b := newBuilder("tree-3level",
		"chained borrow/repay through a three-level GRM tree",
		"DESIGN.md §7d sharding & the GRM tree; paper §3 multi-level architecture")
	b.meta.TTLMS = 10_000
	b.reg(0, "node0", 2)
	b.reg(0, "node1", 2)
	// One attach raises the whole branch: the leaf joins region-east as
	// "site-a"; region-east — whose only local lender holds 1 unit —
	// joins the root, where root-buffer shares half of 8 units with it.
	b.add(500, Event{Op: OpAttach, Name: "site-a", Parent: &ParentSpec{
		Siblings: []SiblingSpec{{Name: "mid-buffer", Capacity: 1, Fraction: 1}},
		Name:     "region-east",
		Parent: &ParentSpec{
			Siblings: []SiblingSpec{
				{Name: "root-buffer", Capacity: 8, Fraction: 0.5},
				{Name: "region-west", Capacity: 4},
			},
		},
	}})
	// The region sees 5 lendable units (the cluster's own aggregate of 4
	// plus mid-buffer's 1), so a borrow of 6 can only be covered by the
	// region borrowing the last unit from the root: the checkpointed
	// region books drain to zero while the grant still lands in full.
	b.alc(1000, 0, 8)   // leaf covers 2, borrows 6 — chained leaf→region→root (lease 1)
	b.rel(2000, 1)      // release repays the chain bottom-up
	b.alc(3000, 1, 7.5) // borrow 5.5: again past the region's 5, again into the root (lease 2)
	b.ren(4000, 2)      // renewed: expires at t=14000
	b.adv(15_000)       // expiry reaps the lease and repays through both levels
	b.rep(15_500, 0, 1.5)
	b.alc(16_000, 0, 2) // the pool is whole again after the repay (lease 3)
	b.rel(17_000, 3)
	return b.bundle()
}

// voCPUSharing models VO usage policies per Dumitrescu & Foster: two
// sites grant fixed fractions of their CPUs to virtual organizations
// registered as zero-capacity principals, and the GRM enforces each
// VO's aggregate entitlement.
func voCPUSharing() *Bundle {
	b := newBuilder("vo-cpu-sharing",
		"VO usage-policy CPU sharing across two sites",
		"Dumitrescu & Foster, usage policy-based CPU sharing in VOs (PAPERS.md)")
	b.reg(0, "siteA", 100)
	b.reg(0, "siteB", 60)
	b.reg(0, "vo-cms", 0)
	b.reg(0, "vo-atlas", 0)
	b.shr(100, 0, 2, 0.30) // siteA → cms 30%
	b.shr(100, 0, 3, 0.20) // siteA → atlas 20%
	b.shr(100, 1, 2, 0.50) // siteB → cms 50%
	b.alc(1000, 2, 50)     // cms entitlement 0.3·100 + 0.5·60 = 60: granted (lease 1)
	b.alc(1100, 3, 15)     // atlas entitlement 20: granted (lease 2)
	// Relative shares track the sites' remaining availability, so cms's
	// entitlement regrows against what the sites still have: granted.
	b.alc(1200, 2, 20) // lease 3
	b.alc(1300, 0, 40) // the site itself reaches its unshared remainder (lease 4)
	b.alc(1400, 2, 55) // now past the shrunken entitlement: refused
	b.rel(2000, 1)
	b.alc(2100, 2, 30) // the release restored the entitlement: granted (lease 5)
	b.rel(3000, 2)
	b.rel(3100, 3)
	b.rel(3200, 4)
	b.rel(3300, 5)
	return b.bundle()
}

// fairnessStress is the "No Justified Complaints" shape: six peers with
// equal pairwise shares under scarcity, where later allocations pay
// rising perturbation θ until requests are refused, and releases
// restore the pool for a clean second wave.
func fairnessStress() *Bundle {
	b := newBuilder("fairness-stress",
		"equal-share fairness under multi-resource scarcity",
		"\"No Justified Complaints\" fair division (PAPERS.md)")
	const n = 6
	for i := 0; i < n; i++ {
		b.reg(0, fmt.Sprintf("peer%d", i), 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.shr(0, i, j, 1.0/n)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.rep(1000, i, 0.15) // scarcity: 0.9 units system-wide
	}
	// First wave: everyone asks for more than their own availability
	// but within their entitlement — early requesters are granted at
	// rising θ, late ones hit the drained pool and are refused.
	for i := 0; i < n; i++ {
		b.alc(2000+int64(i)*100, i, 0.2)
	}
	// Second wave into the drained pool: refusals, books untouched.
	b.alc(3000, 0, 0.3)
	b.alc(3100, 5, 0.5)
	// Releasing the first grant restores the pool; a bogus token is
	// refused without touching the books; then allocation works again.
	b.rel(4000, 1)
	b.rel(4100, 99)
	b.alc(5000, 3, 0.25)
	return b.bundle()
}

// leaseChurn exercises the lease lifecycle under connection churn: TTL
// expiry via advance, survival via renew, and a killed connection whose
// transparent reconnect re-registers and replays the last report.
func leaseChurn() *Bundle {
	b := newBuilder("lease-churn",
		"lease expiry, renewal, and reconnect churn",
		"DESIGN.md §5a failure semantics")
	b.meta.TTLMS = 5_000
	b.reg(0, "a", 4)
	b.reg(0, "b", 4)
	b.reg(0, "c", 2)
	b.shr(100, 0, 2, 0.5) // a → c 50%
	b.shr(100, 1, 2, 0.25)
	b.alc(1000, 2, 3) // lease 1, expires t=6000
	b.alc(1200, 0, 2) // lease 2, expires t=6200
	b.ren(4000, 1)    // lease 1 now expires t=9000
	b.kil(4500, 1)    // kill b's connection: reconnect re-registers + re-reports
	b.adv(6500)       // lease 2 expired; lease 1 renewed and alive
	b.rep(7000, 1, 3.5)
	b.adv(9500)         // lease 1 expires too
	b.alc(10_000, 2, 1) // pool is whole again (lease 3)
	b.rel(10_500, 3)
	return b.bundle()
}
