// Package store is the GRM's durable state layer: an append-only event
// log (write-ahead log) of state transitions plus periodically compacted
// snapshots. Every transition the GRM commits — registration, report,
// agreement, allocation, release, renewal, expiry, federation borrow and
// repayment, snapshot preload — is appended as one Record; replaying the
// log from an empty server reconstructs the exact leases, borrows, and
// capacities the server held, which is what grm.Server.Recover does
// after a crash or restart.
//
// Two Log implementations are provided: MemLog (in-memory; the
// model-based testing harness's "durable medium" across simulated
// restarts) and FileLog (a directory holding a CRC-framed WAL file and a
// compacted snapshot file; see filelog.go for the on-disk format and its
// truncated-tail recovery semantics).
package store

import (
	"fmt"
	"sync"
)

// Kind enumerates the state transitions the GRM records.
type Kind uint8

const (
	// KindState is a compacted snapshot of the entire dynamic state; it
	// appears only as the first record of a compacted log and replaces
	// every record that preceded it.
	KindState Kind = iota + 1
	// KindSnapshotLoad records a preloaded agreements snapshot (the raw
	// JSON of an agreement.Snapshot).
	KindSnapshotLoad
	// KindRegister records a principal registering (or re-attaching
	// under a declared/previous name) with a starting capacity.
	KindRegister
	// KindReport records an availability report.
	KindReport
	// KindShare records a new sharing agreement (relative or absolute).
	KindShare
	// KindRevoke records an agreement revocation by ticket token.
	KindRevoke
	// KindAlloc records a committed allocation: the lease token, the
	// per-principal takes, the expiry, and the parent lease token when
	// part of the allocation was borrowed through the federation.
	KindAlloc
	// KindRelease records a lease being returned by its holder.
	KindRelease
	// KindRenew records a lease expiry extension.
	KindRenew
	// KindExpire records the reaper reclaiming an expired lease.
	KindExpire
	// KindBorrow records capacity borrowed from the parent GRM (the
	// parent's lease token and the amount granted).
	KindBorrow
	// KindRepay records a federation borrow being repaid to the parent.
	KindRepay
)

var kindNames = map[Kind]string{
	KindState:        "state",
	KindSnapshotLoad: "snapshot-load",
	KindRegister:     "register",
	KindReport:       "report",
	KindShare:        "share",
	KindRevoke:       "revoke",
	KindAlloc:        "alloc",
	KindRelease:      "release",
	KindRenew:        "renew",
	KindExpire:       "expire",
	KindBorrow:       "borrow",
	KindRepay:        "repay",
}

// String names the kind for logs and traces.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a known record kind.
func (k Kind) Valid() bool { _, ok := kindNames[k]; return ok }

// Record is one state transition. Seq is assigned by the writer and is
// strictly increasing within a log; replay rejects regressions, and a
// compacted snapshot's Seq marks the point up to which the tail of the
// WAL is already folded in (tail records at or below it are skipped).
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`

	// Register / Report.
	Principal int     `json:"principal,omitempty"`
	Name      string  `json:"name,omitempty"`
	Capacity  float64 `json:"capacity,omitempty"`
	Available float64 `json:"available,omitempty"`

	// Share / Revoke. Ticket is the wire-protocol ticket token (an index,
	// so compaction must preserve share ordering).
	From     int     `json:"from,omitempty"`
	To       int     `json:"to,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Quantity float64 `json:"quantity,omitempty"`
	Ticket   int     `json:"ticket,omitempty"`

	// Alloc / Release / Renew / Expire / Borrow / Repay.
	Lease       int       `json:"lease,omitempty"`
	Takes       []float64 `json:"takes,omitempty"`
	Expires     int64     `json:"expires,omitempty"` // unix nanos; 0 = never
	ParentLease int       `json:"parent_lease,omitempty"`
	Amount      float64   `json:"amount,omitempty"`

	// SnapshotLoad payload: the raw agreement.Snapshot JSON.
	Snapshot []byte `json:"snapshot,omitempty"`

	// State payload for KindState records.
	State *State `json:"state,omitempty"`
}

// State is a compacted image of the GRM's dynamic state: everything a
// pristine server needs to resume with identical books. Agreements are
// carried as the ordered share history (ticket tokens are indexes into
// it) plus the originally preloaded snapshot, so replay rebuilds the
// ticket-and-currency system through the same code paths as live
// operation.
type State struct {
	// Declared is the preloaded agreement.Snapshot JSON, nil if none.
	Declared []byte `json:"declared,omitempty"`
	// Names lists every principal in registration order (declared
	// principals first when Declared is set).
	Names []string `json:"names"`
	// Reported and Avail are the per-principal high-water reported
	// capacities and current availability.
	Reported []float64 `json:"reported"`
	Avail    []float64 `json:"avail"`
	// Shares is the full ordered agreement history, revoked ones
	// included (their tokens stay allocated).
	Shares []ShareState `json:"shares,omitempty"`
	// Leases are the outstanding allocations.
	Leases []LeaseState `json:"leases,omitempty"`
	// Borrows are the outstanding federation borrows from the parent GRM,
	// keyed by the parent's lease token — this level's borrow balance in a
	// multi-level GRM tree.
	Borrows []BorrowState `json:"borrows,omitempty"`
	// NextLease is the next lease token to hand out.
	NextLease int `json:"next_lease"`
}

// ShareState is one agreement in the compacted history.
type ShareState struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Fraction float64 `json:"fraction,omitempty"`
	Quantity float64 `json:"quantity,omitempty"`
	Revoked  bool    `json:"revoked,omitempty"`
}

// LeaseState is one outstanding lease in the compacted state.
type LeaseState struct {
	Token       int       `json:"token"`
	Takes       []float64 `json:"takes"`
	Expires     int64     `json:"expires,omitempty"`
	ParentLease int       `json:"parent_lease,omitempty"`
}

// BorrowState is one outstanding federation borrow in the compacted state.
type BorrowState struct {
	ParentLease int     `json:"parent_lease"`
	Amount      float64 `json:"amount"`
}

// Log is the interface the GRM records through. Implementations must be
// safe for concurrent use.
type Log interface {
	// Append adds one record to the tail. The caller hands over
	// ownership of rec and its slices.
	Append(rec *Record) error
	// Replay calls fn for every live record in order: the compacted
	// state record first (if any), then the tail. An fn error aborts
	// the replay and is returned.
	Replay(fn func(*Record) error) error
	// Compact replaces the entire log with the single state record,
	// which must have Kind KindState; its Seq marks the fold point.
	Compact(state *Record) error
	// Sync flushes buffered records to the durable medium.
	Sync() error
	// Close syncs and releases the log's resources.
	Close() error
}

// MemLog is an in-memory Log. It survives a grm.Server restart within
// one process — the model-based testing harness's stand-in for a disk.
// The zero value is ready to use.
type MemLog struct {
	mu   sync.Mutex
	recs []*Record
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append adds rec to the tail.
func (m *MemLog) Append(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, rec)
	return nil
}

// Replay calls fn over every record in order.
func (m *MemLog) Replay(fn func(*Record) error) error {
	m.mu.Lock()
	recs := append([]*Record(nil), m.recs...)
	m.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Compact replaces the log's contents with the single state record.
func (m *MemLog) Compact(state *Record) error {
	if state.Kind != KindState {
		return fmt.Errorf("store: Compact with %v record, want state", state.Kind)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs[:0:0], state)
	return nil
}

// Len reports how many records the log holds (tests and compaction
// policies use it; replay cost is proportional to it).
func (m *MemLog) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Sync is a no-op for the in-memory log.
func (m *MemLog) Sync() error { return nil }

// Close is a no-op for the in-memory log.
func (m *MemLog) Close() error { return nil }
