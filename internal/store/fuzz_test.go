package store

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzPrefix is a short valid log whose frames seed the corpus and whose
// records must survive any fuzzed tail appended after them.
func fuzzPrefix(t interface{ Fatal(...any) }) ([]byte, []*Record) {
	recs := []*Record{
		{Seq: 1, Kind: KindRegister, Name: "node0", Capacity: 100},
		{Seq: 2, Kind: KindReport, Principal: 0, Available: 55.5},
		{Seq: 3, Kind: KindAlloc, Lease: 1, Takes: []float64{10, 0}, Expires: 42},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		frame, err := encodeFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes(), recs
}

// FuzzLogDecode feeds arbitrary bytes through the frame decoder. The
// decoder must never panic, must treat any corruption as a clean stop at
// the last valid record, and must always recover the intact prefix when
// garbage is appended after valid frames.
func FuzzLogDecode(f *testing.F) {
	prefix, _ := fuzzPrefix(f)
	f.Add([]byte{})
	f.Add(prefix)
	f.Add(prefix[:len(prefix)-3])               // torn tail
	f.Add(append([]byte{0xFF, 0xFF}, prefix...)) // garbage header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw bytes: any outcome but a panic or a read error is fine, and
		// the reported valid length must cover exactly the decoded frames.
		recs, n, err := DecodeRecords(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory decode errored: %v", err)
		}
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("valid length %d outside [0, %d]", n, len(data))
		}
		reDecoded, n2, err := DecodeRecords(bytes.NewReader(data[:n]))
		if err != nil || n2 != n || len(reDecoded) != len(recs) {
			t.Fatalf("valid prefix not self-consistent: %d records/%d bytes vs %d/%d (%v)",
				len(reDecoded), n2, len(recs), n, err)
		}

		// Valid frames followed by the fuzz input: the prefix records must
		// always be recovered, in order.
		prefix, want := fuzzPrefix(t)
		got, _, err := DecodeRecords(bytes.NewReader(append(append([]byte{}, prefix...), data...)))
		if err != nil {
			t.Fatalf("prefixed decode errored: %v", err)
		}
		if len(got) < len(want) {
			t.Fatalf("lost prefix records: got %d, want at least %d", len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("prefix record %d mutated:\ngot  %+v\nwant %+v", i, got[i], want[i])
			}
		}
	})
}
