package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// On-disk framing: every record is one frame of
//
//	[4B little-endian payload length][4B CRC-32 (IEEE) of payload][payload]
//
// where the payload is the Record encoded as JSON. The CRC catches
// torn or bit-rotted frames; a short header or payload marks the point
// a crash truncated the file. Decoding stops at the first frame that
// fails any check — everything before it is the recovered prefix, and
// the file is truncated back to that point on open so later appends
// never follow garbage.
const (
	frameHeaderSize = 8
	// maxFramePayload bounds one record's encoded size; a length field
	// beyond it is treated as corruption, not an allocation request.
	maxFramePayload = 16 << 20
)

const (
	walName  = "wal.log"
	snapName = "snapshot.wal"
	tmpName  = "snapshot.tmp"
)

// FileLog is a file-backed Log: an append-only WAL file plus a
// compacted snapshot file, both under one directory. Every Append is
// written through to the OS (one write syscall — it survives a killed
// process, which is the crash recovery defends against); Sync fsyncs
// for power-loss durability (the GRM syncs on shutdown and after
// compaction, trading per-record fsync latency for the paper's
// soft-state tolerance — LRM reports refresh availability anyway).
type FileLog struct {
	dir string

	mu   sync.Mutex
	wal  *os.File
	bw   *bufio.Writer
	open bool
}

// OpenFileLog opens (creating if needed) the log directory. The WAL
// tail is scanned and truncated back to its last valid record, so a
// file torn by a crash is safe to append to immediately.
func OpenFileLog(dir string) (*FileLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	// A crash between writing snapshot.tmp and renaming it leaves a tmp
	// file that was never activated; drop it.
	os.Remove(filepath.Join(dir, tmpName))
	walPath := filepath.Join(dir, walName)
	valid, _, err := scanFrames(walPath)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", walPath, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate %s to %d: %w", walPath, valid, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", walPath, err)
	}
	return &FileLog{dir: dir, wal: f, bw: bufio.NewWriter(f), open: true}, nil
}

// Dir returns the log directory.
func (fl *FileLog) Dir() string { return fl.dir }

// Append encodes rec as one frame at the WAL tail and writes it through
// to the OS, so a killed process loses nothing; call Sync to force it
// to stable storage.
func (fl *FileLog) Append(rec *Record) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.open {
		return fmt.Errorf("store: append to closed log")
	}
	if _, err := fl.bw.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := fl.bw.Flush(); err != nil {
		return fmt.Errorf("store: append flush: %w", err)
	}
	return nil
}

// Replay feeds fn the snapshot's state record (if present) followed by
// every tail record newer than the snapshot's fold point. Buffered
// appends are flushed first so the replay sees them.
func (fl *FileLog) Replay(fn func(*Record) error) error {
	fl.mu.Lock()
	if fl.open {
		if err := fl.bw.Flush(); err != nil {
			fl.mu.Unlock()
			return fmt.Errorf("store: flush before replay: %w", err)
		}
	}
	fl.mu.Unlock()

	var foldSeq uint64
	snapPath := filepath.Join(fl.dir, snapName)
	if _, err := os.Stat(snapPath); err == nil {
		_, recs, err := scanFrames(snapPath)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Seq > foldSeq {
				foldSeq = rec.Seq
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	_, recs, err := scanFrames(filepath.Join(fl.dir, walName))
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Seq <= foldSeq {
			// Already folded into the snapshot: a crash between the
			// snapshot rename and the WAL truncate leaves such records.
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Compact atomically replaces the log's contents with the single state
// record: the snapshot is written to a temp file, fsynced, renamed over
// the old snapshot, and only then is the WAL truncated. A crash at any
// point leaves a log that replays to the same state.
func (fl *FileLog) Compact(state *Record) error {
	if state.Kind != KindState {
		return fmt.Errorf("store: Compact with %v record, want state", state.Kind)
	}
	frame, err := encodeFrame(state)
	if err != nil {
		return err
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.open {
		return fmt.Errorf("store: compact closed log")
	}
	tmp := filepath.Join(fl.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("store: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(fl.dir, snapName)); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	// The snapshot is durable; the WAL tail it folded in can go.
	fl.bw.Reset(fl.wal)
	if err := fl.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact truncate: %w", err)
	}
	if _, err := fl.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact seek: %w", err)
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the WAL.
func (fl *FileLog) Sync() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.open {
		return nil
	}
	if err := fl.bw.Flush(); err != nil {
		return fmt.Errorf("store: sync flush: %w", err)
	}
	if err := fl.wal.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the WAL file. Further appends fail.
func (fl *FileLog) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.open {
		return nil
	}
	fl.open = false
	flushErr := fl.bw.Flush()
	syncErr := fl.wal.Sync()
	closeErr := fl.wal.Close()
	if flushErr != nil {
		return fmt.Errorf("store: close flush: %w", flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("store: close sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("store: close: %w", closeErr)
	}
	return nil
}

// encodeFrame renders one record as a length+CRC framed JSON payload.
func encodeFrame(rec *Record) ([]byte, error) {
	if !rec.Kind.Valid() {
		return nil, fmt.Errorf("store: encode record with invalid kind %d", uint8(rec.Kind))
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("store: record payload %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// DecodeRecords reads frames from r until it hits EOF or the first
// invalid frame (short header, oversized or short payload, CRC
// mismatch, malformed JSON, unknown kind, or a sequence regression).
// It returns the valid prefix's records and its byte length; corruption
// is a stop condition, never an error — recovery resumes from the last
// valid record. The only error returned is a non-EOF read failure.
func DecodeRecords(r io.Reader) (recs []*Record, validLen int64, err error) {
	br := bufio.NewReader(r)
	var lastSeq uint64
	for {
		header := make([]byte, frameHeaderSize)
		if _, err := io.ReadFull(br, header); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, validLen, nil
			}
			return recs, validLen, fmt.Errorf("store: read frame header: %w", err)
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		if n > maxFramePayload {
			return recs, validLen, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, validLen, nil
			}
			return recs, validLen, fmt.Errorf("store: read frame payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(header[4:8]) {
			return recs, validLen, nil
		}
		rec := &Record{}
		if err := json.Unmarshal(payload, rec); err != nil {
			return recs, validLen, nil
		}
		if !rec.Kind.Valid() {
			return recs, validLen, nil
		}
		if len(recs) > 0 && rec.Seq <= lastSeq {
			// Sequence regressions mean the tail predates the prefix
			// (e.g. a recycled file); stop at the consistent prefix.
			return recs, validLen, nil
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		validLen += int64(frameHeaderSize) + int64(n)
	}
}

// scanFrames decodes every valid record in the named file. A missing
// file is an empty log.
func scanFrames(path string) (validLen int64, recs []*Record, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close()
	recs, validLen, err = DecodeRecords(f)
	if err != nil {
		return 0, nil, fmt.Errorf("store: scan %s: %w", path, err)
	}
	return validLen, recs, nil
}
