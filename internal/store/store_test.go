package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []*Record {
	return []*Record{
		{Seq: 1, Kind: KindRegister, Name: "A", Capacity: 100},
		{Seq: 2, Kind: KindRegister, Name: "B", Capacity: 80},
		{Seq: 3, Kind: KindShare, From: 1, To: 0, Fraction: 0.5, Ticket: 0},
		{Seq: 4, Kind: KindReport, Principal: 1, Available: 60},
		{Seq: 5, Kind: KindAlloc, Lease: 1, Takes: []float64{30, 10}, Expires: 12345},
		{Seq: 6, Kind: KindRelease, Lease: 1, Takes: []float64{30, 10}},
	}
}

func replayAll(t *testing.T, l Log) []*Record {
	t.Helper()
	var got []*Record
	if err := l.Replay(func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestMemLogRoundTrip(t *testing.T) {
	l := NewMemLog()
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, l)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	state := &Record{Seq: 6, Kind: KindState, State: &State{Names: []string{"A", "B"}}}
	if err := l.Compact(state); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 1 || got[0].Kind != KindState {
		t.Fatalf("after compact replay = %+v, want single state record", got)
	}
	if err := l.Compact(&Record{Kind: KindAlloc}); err == nil {
		t.Error("Compact accepted a non-state record")
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Replay flushes buffered appends, so it sees them pre-Sync.
	if got := replayAll(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Seq: 7, Kind: KindReport}); err == nil {
		t.Error("append after Close succeeded")
	}

	// Reopen: the records persist.
	l2, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestFileLogCompactAndTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	state := &Record{Seq: 6, Kind: KindState, State: &State{
		Names:    []string{"A", "B"},
		Reported: []float64{100, 80},
		Avail:    []float64{100, 60},
	}}
	if err := l.Compact(state); err != nil {
		t.Fatal(err)
	}
	tail := &Record{Seq: 7, Kind: KindReport, Principal: 0, Available: 42}
	if err := l.Append(tail); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 2 || got[0].Kind != KindState || got[1].Seq != 7 {
		t.Fatalf("replay after compact = %+v, want [state, seq 7]", got)
	}
	if got[0].State == nil || !reflect.DeepEqual(got[0].State.Avail, []float64{100, 60}) {
		t.Fatalf("state payload lost: %+v", got[0])
	}
}

// TestFileLogStaleTailSkipped models a crash between the snapshot rename
// and the WAL truncate: tail records already folded into the snapshot
// (seq <= the snapshot's) must not be replayed twice.
func TestFileLogStaleTailSkipped(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand, leaving the WAL untruncated — exactly
	// the torn-compaction state.
	state := &Record{Seq: 6, Kind: KindState, State: &State{Names: []string{"A", "B"}}}
	frame, err := encodeFrame(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l)
	if len(got) != 1 || got[0].Kind != KindState {
		t.Fatalf("replay = %d records (%+v), want just the snapshot", len(got), got)
	}
	l.Close()
}

// TestFileLogTruncatedTail torn-writes the WAL at every byte boundary of
// the last frame and checks recovery stops exactly at the last intact
// record, then accepts new appends cleanly.
func TestFileLogTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame, err := encodeFrame(recs[len(recs)-1])
	if err != nil {
		t.Fatal(err)
	}
	prefixLen := len(full) - len(lastFrame)

	for cut := prefixLen + 1; cut < len(full); cut += 3 {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := OpenFileLog(sub)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := replayAll(t, tl)
		if len(got) != len(recs)-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(recs)-1)
		}
		// The torn tail was truncated away; a new append must extend the
		// valid prefix, not follow garbage.
		next := &Record{Seq: 99, Kind: KindReport, Principal: 0, Available: 7}
		if err := tl.Append(next); err != nil {
			t.Fatal(err)
		}
		got = replayAll(t, tl)
		if len(got) != len(recs) || got[len(got)-1].Seq != 99 {
			t.Fatalf("cut %d: after append got %d records, last %+v", cut, len(got), got[len(got)-1])
		}
		tl.Close()
	}
}

// TestFileLogCorruptMiddle flips a payload byte mid-file: recovery keeps
// the prefix before the corrupt frame and drops everything after.
func TestFileLogCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the third frame's payload.
	var off int64
	for i := 0; i < 2; i++ {
		fr, _ := encodeFrame(recs[i])
		off += int64(len(fr))
	}
	full[off+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 2 {
		t.Fatalf("recovered %d records past corruption, want 2", len(got))
	}
}

func TestDecodeRecordsRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	recs, n, err := DecodeRecords(&buf)
	if err != nil || len(recs) != 0 || n != 0 {
		t.Fatalf("DecodeRecords = %v, %d, %v; want clean empty stop", recs, n, err)
	}
}
