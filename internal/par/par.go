// Package par is the minimal worker-pool primitive the enforcement hot
// path is parallelized with: run n independent work items on a bounded
// number of goroutines. Items are handed out through an atomic counter
// (dynamic load balancing — transitive-closure rows have wildly uneven
// cost), and callers get determinism by writing results into
// pre-allocated, index-addressed slots rather than by relying on any
// completion order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default pool size for n independent items: GOMAXPROCS
// capped at n, at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every i in [0, n) using up to `workers` goroutines and
// returns when all items are done. workers <= 1 (or n <= 1) runs inline on
// the calling goroutine with no synchronization at all, so wrapping tiny
// inputs costs nothing. fn must not panic across items it does not own:
// items are distributed dynamically, one at a time.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
