package par

import (
	"sync/atomic"
	"testing"
)

func TestDoCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 17, 100} {
			hits := make([]int32, n)
			Do(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Fatalf("Workers(big) = %d", w)
	}
}
