package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// fastOpts shrinks the workload and proxy count so each figure runs in
// well under a second. The shape assertions below are correspondingly
// loose; the full-scale reproduction lives in cmd/proxysim and
// EXPERIMENTS.md.
func fastOpts() Options {
	// Scale 20 is the coarsest workload that still shows the paper's
	// level-separation effects; 50 blurs them (per-request work grows to
	// minutes and the scheduler horizon covers only ~20 requests).
	return Options{Scale: 20, Proxies: 6, Warmup: 4 * 3600}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	waits := fig.Series[1].Y
	// Overload near the peak, idle mid-day.
	if maxOf(waits) < 5 {
		t.Errorf("no-sharing peak wait %g too small", maxOf(waits))
	}
	reqs := fig.Series[0].Y
	if maxOf(reqs) == 0 {
		t.Error("no requests recorded")
	}
}

func TestFig6GapHelps(t *testing.T) {
	fig, err := Fig6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 gap series, got %d", len(fig.Series))
	}
	// Larger gaps must reduce ISP0's worst slot wait: compare gap 0 to
	// gap 3600.
	worst0 := maxOf(fig.Series[0].Y)
	worst3600 := maxOf(fig.Series[3].Y)
	if worst3600 > worst0 {
		t.Errorf("gap 3600 worst %g should not exceed gap 0 worst %g", worst3600, worst0)
	}
}

func TestFig7CapacityCrossover(t *testing.T) {
	fig, err := Fig7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	share, alone := fig.Series[0], fig.Series[1]
	// Sharing at 1.0x must beat no-sharing at 1.0x.
	if share.Y[0] >= alone.Y[0] {
		t.Errorf("sharing %g should beat no-sharing %g at unit capacity", share.Y[0], alone.Y[0])
	}
	// No-sharing improves with capacity.
	if alone.Y[len(alone.Y)-1] >= alone.Y[0] {
		t.Errorf("no-sharing wait should fall with capacity: %v", alone.Y)
	}
}

func TestFig9LevelSeparation(t *testing.T) {
	fig, err := Fig9(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Level 1 (series 0) must be clearly worse than the full level
	// (last series) on the skip-1 loop.
	lvl1 := maxOf(fig.Series[0].Y)
	full := maxOf(fig.Series[len(fig.Series)-1].Y)
	if full > lvl1*0.75 {
		t.Errorf("full transitivity worst %g not well below level-1 %g", full, lvl1)
	}
}

func TestFig12CostsSmall(t *testing.T) {
	fig, err := Fig12(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 cost series, got %d", len(fig.Series))
	}
	// The paper's claim: redirection cost has small impact. Allow a loose
	// factor to keep the scaled-down test stable.
	base := maxOf(fig.Series[0].Y)
	costly := maxOf(fig.Series[2].Y)
	if costly > 3*base+5 {
		t.Errorf("redirect cost blew up waits: %g vs %g", costly, base)
	}
}

func TestFig13LPBeatsEndpoint(t *testing.T) {
	fig, err := Fig13(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	lp := maxOf(fig.Series[0].Y)
	prop := maxOf(fig.Series[1].Y)
	if lp > prop {
		t.Errorf("LP worst slot %g should not exceed endpoint scheme %g", lp, prop)
	}
}

func TestRender(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series:  []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Summary: []string{"headline"},
	}
	var buf bytes.Buffer
	if err := Render(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "headline", "a", "3.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1 || o.Proxies != 10 || o.Warmup != 6*3600 || o.Seed != 1 {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestFig10And11Run(t *testing.T) {
	// Loop skips 3 and 7 need a coprime proxy count; use the paper's 10
	// at a very coarse scale just to exercise the path.
	o := Options{Scale: 20, Proxies: 10, Warmup: 4 * 3600}
	for name, f := range map[string]func(Options) (*Figure, error){
		"fig10": Fig10, "fig11": Fig11,
	} {
		fig, err := f(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fig.Series) != 4 {
			t.Errorf("%s: %d series, want 4", name, len(fig.Series))
		}
		// Level 1 on distant-neighbor loops is already effective: it must
		// be far below the no-sharing regime (hundreds of seconds).
		if worst := maxOf(fig.Series[0].Y); worst > 150 {
			t.Errorf("%s: level-1 worst %g looks unshared", name, worst)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("all-figures run is slow")
	}
	figs, err := All(Options{Scale: 50, Proxies: 4, Warmup: 4 * 3600})
	// Loop skips 3 and 7 cannot form a single loop with 4 proxies, so an
	// error is expected partway — but the figures before it must exist.
	if err == nil {
		t.Log("All completed without error (unexpected but fine)")
	}
	if len(figs) < 4 {
		t.Errorf("All returned only %d figures before failing", len(figs))
	}
}

func TestReplicate(t *testing.T) {
	o := Options{Scale: 50, Proxies: 3, Warmup: 2 * 3600}
	reps, err := Replicate(Fig5, o, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 { // requests + waits series
		t.Fatalf("got %d replications, want 2", len(reps))
	}
	for _, r := range reps {
		if len(r.Peaks) != 3 {
			t.Errorf("%s: %d peaks, want 3", r.Label, len(r.Peaks))
		}
		if r.PeakMean <= 0 {
			t.Errorf("%s: zero mean peak", r.Label)
		}
	}
	// Different seeds must actually vary the workload.
	w := reps[0]
	if w.Peaks[0] == w.Peaks[1] && w.Peaks[1] == w.Peaks[2] {
		t.Error("peaks identical across seeds; seeding not wired through")
	}
	if s := w.Spread(); s < 0 || s > 1 {
		t.Errorf("implausible spread %g", s)
	}
}

func TestExtOutageFailover(t *testing.T) {
	fig, err := ExtOutage(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(fig.Series))
	}
	noShare := maxOf(fig.Series[0].Y)
	fullShare := maxOf(fig.Series[2].Y)
	if fullShare > noShare*0.5 {
		t.Errorf("failover worst %g not well below stranded %g", fullShare, noShare)
	}
}
