package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Render writes a figure as a text report: the summary lines the paper's
// prose quotes, then the series as aligned columns (x, then one column per
// series), suitable for piping into a plotting tool.
func Render(w io.Writer, fig *Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", fig.ID, fig.Title); err != nil {
		return err
	}
	for _, s := range fig.Summary {
		if _, err := fmt.Fprintf(w, "   %s\n", s); err != nil {
			return err
		}
	}
	if len(fig.Series) == 0 {
		return nil
	}
	// Header.
	cols := make([]string, 0, len(fig.Series)+1)
	cols = append(cols, fig.XLabel)
	for _, s := range fig.Series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Join(cols, "\t")); err != nil {
		return err
	}
	// All series of a figure share X by construction; use the longest
	// defensively.
	n := 0
	for _, s := range fig.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(fig.Series)+1)
		x := ""
		for _, s := range fig.Series {
			if i < len(s.X) {
				x = fmt.Sprintf("%.3f", s.X[i])
				break
			}
		}
		row = append(row, x)
		for _, s := range fig.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
