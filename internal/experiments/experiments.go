// Package experiments regenerates every figure of the paper's evaluation
// (Section 4, Figures 5–13) from the reproduced system: the synthetic
// Berkeley-like workload, the discrete-event proxy simulator, and the
// agreement-enforcement planners. Each FigN function returns the data the
// corresponding figure plots; cmd/proxysim renders them as text tables and
// bench_test.go wraps each in a benchmark.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options control the scale of the reproduction.
type Options struct {
	// Scale coarsens the workload by this factor while preserving
	// utilization (1 = the paper's request granularity; benches use
	// 20–50 for speed). Default 1.
	Scale float64
	// Proxies is the number of ISPs (the paper uses 10).
	Proxies int
	// Warmup (seconds) is simulated before the reported 24-hour window to
	// fill the queues; default 6 hours.
	Warmup float64
	// Seed overrides the workload seed (default 1).
	Seed int64
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Proxies <= 0 {
		o.Proxies = 10
	}
	if o.Warmup <= 0 {
		o.Warmup = 6 * 3600
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// workload returns the scaled profile and service model.
func (o Options) workload() (trace.Profile, trace.ServiceModel) {
	p := trace.BerkeleyLike()
	p.Seed = o.Seed
	return sim.ScaleWorkload(p, trace.PaperServiceModel(), o.Scale)
}

// baseConfig is the common simulator setup: Warmup + 24 h horizon,
// one-hour time zones unless a figure overrides the skew.
func (o Options) baseConfig(p trace.Profile, m trace.ServiceModel) sim.Config {
	return sim.Config{
		NumProxies: o.Proxies,
		Profile:    p,
		Service:    m,
		Skew:       sim.SkewVector(o.Proxies, 3600),
		Horizon:    o.Warmup + trace.Day,
		Warmup:     o.Warmup,
		// The shed threshold is "this many seconds of queued work"; it
		// must scale with the per-request work so that coarsened
		// workloads shed after the same number of queued requests.
		Threshold: 5 * o.Scale,
	}
}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the regenerated data of one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Summary carries the headline numbers the paper's text quotes for
	// this figure ("worst-case wait", "redirected fraction", ...).
	Summary []string
}

// runAll executes one figure's independent sweep configurations on a
// bounded worker pool (sized by GOMAXPROCS). Results come back in input
// order, so the figures' series and summaries are deterministic regardless
// of completion order; on failure the error of the lowest-index
// configuration is reported. Sharing a planner between configurations is
// safe: core planners are concurrency-safe and each simulation run derives
// its workload from its own seeded generator.
func runAll(cfgs []sim.Config) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	par.Do(len(cfgs), par.Workers(len(cfgs)), func(i int) {
		results[i], errs[i] = sim.Run(cfgs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// hours converts the slot index of a result series into hour-of-day
// labels, accounting for the warmup offset.
func hours(res *sim.Result, warmup float64) []float64 {
	out := make([]float64, res.Wait.Slots())
	for i := range out {
		out[i] = math.Mod((warmup+float64(i)*res.Wait.SlotWidth())/3600, 24)
	}
	return out
}

// slotSeries extracts a per-slot series from a TimeSeries-producing
// accessor.
func slotMeans(res *sim.Result) []float64 { return res.Wait.Means() }

func slotCounts(res *sim.Result) []float64 {
	counts := res.Wait.Counts()
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c)
	}
	return out
}

// Fig5 reproduces Figure 5: per-slot request counts and average waiting
// times over 24 hours without any resource sharing.
func Fig5(o Options) (*Figure, error) {
	o = o.normalize()
	p, m := o.workload()
	cfg := o.baseConfig(p, m)
	cfg.NumProxies = 1
	cfg.Skew = nil
	cfg.Planner = nil
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	x := hours(res, o.Warmup)
	fig := &Figure{
		ID:     "fig5",
		Title:  "Requests and average waiting time per 10-minute slot, no sharing",
		XLabel: "hour of day",
		YLabel: "requests / slot, wait (s)",
		Series: []Series{
			{Label: "requests", X: x, Y: slotCounts(res)},
			{Label: "avg wait (s)", X: x, Y: slotMeans(res)},
		},
	}
	fig.Summary = append(fig.Summary,
		fmt.Sprintf("peak slot average wait: %.1f s (paper: ~250 s)", res.WorstSlotWait()),
		fmt.Sprintf("overall mean wait: %.2f s over %d requests", res.Overall.Mean(), res.Requests))
	return fig, nil
}

// Fig6 reproduces Figure 6: average waiting time with sharing (complete
// graph, 10% shares) for different time skews ("gaps") between proxies.
func Fig6(o Options) (*Figure, error) {
	o = o.normalize()
	p, m := o.workload()
	fig := &Figure{
		ID:     "fig6",
		Title:  "Average waiting time with sharing, complete graph 10%, by stream gap",
		XLabel: "hour of day",
		YLabel: "avg wait (s)",
	}
	planner, err := sim.CompletePlanner(o.Proxies, 0.1, core.Config{})
	if err != nil {
		return nil, err
	}
	gaps := []float64{0, 1200, 2400, 3600}
	cfgs := make([]sim.Config, len(gaps))
	for i, gap := range gaps {
		cfgs[i] = o.baseConfig(p, m)
		cfgs[i].Skew = sim.SkewVector(o.Proxies, gap)
		cfgs[i].Planner = planner
	}
	results, err := runAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		gap := gaps[i]
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("gap %.0f s", gap),
			X:     hours(res, o.Warmup),
			Y:     res.PerProxyWait[0].Means(),
		})
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("gap %4.0f s: ISP0 worst slot %.2f s, overall mean %.3f s",
				gap, maxOf(res.PerProxyWait[0].Means()), res.Overall.Mean()))
	}
	return fig, nil
}

// Fig7 reproduces Figure 7: how much extra stand-alone capacity a proxy
// needs to match the performance it gets from sharing (paper: 25–35%).
func Fig7(o Options) (*Figure, error) {
	o = o.normalize()
	p, m := o.workload()
	fig := &Figure{
		ID:     "fig7",
		Title:  "Average waiting time vs processing capacity, with and without sharing",
		XLabel: "capacity multiplier",
		YLabel: "overall mean wait (s)",
	}
	planner, err := sim.CompletePlanner(o.Proxies, 0.1, core.Config{})
	if err != nil {
		return nil, err
	}
	multipliers := []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5}
	// Sweep points interleave sharing / no-sharing per multiplier:
	// cfgs[2i] shares, cfgs[2i+1] stands alone.
	cfgs := make([]sim.Config, 2*len(multipliers))
	for i, mult := range multipliers {
		cfgs[2*i] = o.baseConfig(p, m)
		cfgs[2*i].Speed = []float64{mult}
		cfgs[2*i].Planner = planner
		cfgs[2*i+1] = o.baseConfig(p, m)
		cfgs[2*i+1].Speed = []float64{mult}
	}
	results, err := runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var shareSeries, aloneSeries Series
	shareSeries.Label = "with sharing"
	aloneSeries.Label = "no sharing"
	var sharedAtUnit float64
	for i, mult := range multipliers {
		resShare, resAlone := results[2*i], results[2*i+1]
		shareSeries.X = append(shareSeries.X, mult)
		shareSeries.Y = append(shareSeries.Y, resShare.Overall.Mean())
		aloneSeries.X = append(aloneSeries.X, mult)
		aloneSeries.Y = append(aloneSeries.Y, resAlone.Overall.Mean())
		if mult == 1.0 {
			sharedAtUnit = resShare.Overall.Mean()
		}
	}
	fig.Series = []Series{shareSeries, aloneSeries}
	// Where does the no-sharing curve cross sharing-at-1.0?
	cross := math.NaN()
	for i := 0; i < len(aloneSeries.Y); i++ {
		if aloneSeries.Y[i] <= sharedAtUnit {
			cross = aloneSeries.X[i]
			break
		}
	}
	fig.Summary = append(fig.Summary,
		fmt.Sprintf("sharing at 1.0x capacity: mean wait %.3f s", sharedAtUnit))
	if math.IsNaN(cross) {
		fig.Summary = append(fig.Summary,
			"no-sharing does not match sharing even at 1.5x capacity (paper: 25-35% suffices)")
	} else {
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("no-sharing needs ~%.0f%%+ extra capacity to match (paper: 25-35%%)", (cross-1)*100))
	}
	return fig, nil
}

// Fig8 reproduces Figure 8: transitivity levels on the complete graph —
// sharing helps, extra levels add little because everyone is reachable
// directly.
func Fig8(o Options) (*Figure, error) {
	o = o.normalize()
	return loopOrCompleteLevels(o, "fig8",
		"Transitivity levels, complete graph 10% shares", 0, 0.1)
}

// Fig9 reproduces Figure 9: loop structure, sharing neighbor one time
// zone away (skip 1). Enforcing only direct agreements leaves the worst
// waits high; three or more levels recover most of the benefit.
func Fig9(o Options) (*Figure, error) {
	o = o.normalize()
	return loopOrCompleteLevels(o, "fig9",
		"Transitivity levels, loop 80% shares, neighbor 1 h away", 1, 0.8)
}

// Fig10 reproduces Figure 10: loop with the sharing neighbor three time
// zones away (skip 3) — direct agreements already help much more.
func Fig10(o Options) (*Figure, error) {
	o = o.normalize()
	return loopOrCompleteLevels(o, "fig10",
		"Transitivity levels, loop 80% shares, neighbor 3 h away", 3, 0.8)
}

// Fig11 reproduces Figure 11: loop with the neighbor seven time zones
// away (skip 7) — direct agreements suffice.
func Fig11(o Options) (*Figure, error) {
	o = o.normalize()
	return loopOrCompleteLevels(o, "fig11",
		"Transitivity levels, loop 80% shares, neighbor 7 h away", 7, 0.8)
}

// loopOrCompleteLevels runs the transitivity-level sweep on either the
// complete graph (skip == 0) or a loop with the given skip.
func loopOrCompleteLevels(o Options, id, title string, skip int, share float64) (*Figure, error) {
	p, m := o.workload()
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "hour of day",
		YLabel: "avg wait (s)",
	}
	levels := []int{1, 2, 3, o.Proxies - 1}
	cfgs := make([]sim.Config, len(levels))
	for i, lvl := range levels {
		var planner core.Planner
		var err error
		if skip == 0 {
			planner, err = sim.CompletePlanner(o.Proxies, share, core.Config{Level: lvl})
		} else {
			planner, err = sim.LoopPlanner(o.Proxies, skip, share, core.Config{Level: lvl})
		}
		if err != nil {
			return nil, err
		}
		cfgs[i] = o.baseConfig(p, m)
		cfgs[i].Planner = planner
	}
	results, err := runAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		lvl := levels[i]
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("level %d", lvl),
			X:     hours(res, o.Warmup),
			Y:     slotMeans(res),
		})
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("level %d: worst slot %.2f s, mean %.3f s, redirected %.2f%%",
				lvl, res.WorstSlotWait(), res.Overall.Mean(), 100*res.RedirectedFraction()))
	}
	return fig, nil
}

// Fig12 reproduces Figure 12: the impact of a fixed redirection cost of
// zero, one, or two average service times.
func Fig12(o Options) (*Figure, error) {
	o = o.normalize()
	p, m := o.workload()
	fig := &Figure{
		ID:     "fig12",
		Title:  "Average waiting time vs redirection cost, complete graph 10%",
		XLabel: "hour of day",
		YLabel: "avg wait (s)",
	}
	planner, err := sim.CompletePlanner(o.Proxies, 0.1, core.Config{})
	if err != nil {
		return nil, err
	}
	costs := []float64{0, m.A, 2 * m.A}
	cfgs := make([]sim.Config, len(costs))
	for i, cost := range costs {
		cfgs[i] = o.baseConfig(p, m)
		cfgs[i].Planner = planner
		cfgs[i].RedirectCost = cost
	}
	results, err := runAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		cost := costs[i]
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("cost %.2g s", cost),
			X:     hours(res, o.Warmup),
			Y:     slotMeans(res),
		})
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("cost %.2g s: mean %.3f s, redirected %.2f%% (peak slot %.2f%%)",
				cost, res.Overall.Mean(), 100*res.RedirectedFraction(), 100*res.PeakRedirectedFraction()))
	}
	return fig, nil
}

// Fig13 reproduces Figure 13: the centralized LP scheme against endpoint
// (proportional) enforcement on the distance-decayed agreement graph.
func Fig13(o Options) (*Figure, error) {
	o = o.normalize()
	p, m := o.workload()
	fig := &Figure{
		ID:     "fig13",
		Title:  "LP scheme vs endpoint-proportional scheme, distance-decayed graph",
		XLabel: "hour of day",
		YLabel: "avg wait (s)",
	}
	lpPlanner, err := sim.DistanceDecayPlanner(o.Proxies, core.Config{})
	if err != nil {
		return nil, err
	}
	propPlanner, err := sim.DistanceDecayProportional(o.Proxies)
	if err != nil {
		return nil, err
	}
	planners := []struct {
		label   string
		planner core.Planner
	}{
		{"linear programming", lpPlanner},
		{"endpoint proportional", propPlanner},
	}
	cfgs := make([]sim.Config, len(planners))
	for i, pl := range planners {
		cfgs[i] = o.baseConfig(p, m)
		cfgs[i].Planner = pl.planner
	}
	results, err := runAll(cfgs)
	if err != nil {
		return nil, err
	}
	var peak [2]float64
	for i, res := range results {
		pl := planners[i]
		fig.Series = append(fig.Series, Series{
			Label: pl.label,
			X:     hours(res, o.Warmup),
			Y:     slotMeans(res),
		})
		peak[i] = res.WorstSlotWait()
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("%s: worst slot %.2f s, mean %.3f s, redirected %.2f%%",
				pl.label, res.WorstSlotWait(), res.Overall.Mean(), 100*res.RedirectedFraction()))
	}
	if peak[1] > 0 {
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("LP reduces the worst slot wait by %.0f%% (paper: >50%% at peak)",
				100*(1-peak[0]/peak[1])))
	}
	return fig, nil
}

// ExtOutage is an extension experiment with no paper counterpart: one
// proxy's server fails for two hours bracketing its own rush hour. It
// compares no sharing, direct-only enforcement, and full transitive
// enforcement — measuring how much of an outage the sharing agreements
// can absorb ("dynamically changing resource availability" taken to its
// extreme).
func ExtOutage(o Options) (*Figure, error) {
	o = o.normalize()
	p, m := o.workload()
	fig := &Figure{
		ID:     "ext-outage",
		Title:  "Failover: proxy 0's server down for 2 h around its rush hour",
		XLabel: "hour of day",
		YLabel: "avg wait of proxy 0's clients (s)",
	}
	// Proxy 0 peaks at global hour 23.75; take it down from hour 23 to
	// hour 25 (1 am).
	outages := []sim.Outage{{
		Proxy: 0,
		Start: 23 * 3600,
		End:   25 * 3600,
	}}
	full, err := sim.CompletePlanner(o.Proxies, 0.1, core.Config{})
	if err != nil {
		return nil, err
	}
	direct, err := sim.CompletePlanner(o.Proxies, 0.1, core.Config{Level: 1})
	if err != nil {
		return nil, err
	}
	cases := []struct {
		label   string
		planner core.Planner
	}{
		{"no sharing", nil},
		{"direct only", direct},
		{"full transitive", full},
	}
	cfgs := make([]sim.Config, len(cases))
	for i, tc := range cases {
		cfgs[i] = o.baseConfig(p, m)
		cfgs[i].Planner = tc.planner
		cfgs[i].Outages = outages
	}
	results, err := runAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		tc := cases[i]
		fig.Series = append(fig.Series, Series{
			Label: tc.label,
			X:     hours(res, o.Warmup),
			Y:     res.PerProxyWait[0].Means(),
		})
		fig.Summary = append(fig.Summary,
			fmt.Sprintf("%s: proxy-0 worst slot %.2f s, overall mean %.3f s, redirected %.2f%%",
				tc.label, maxOf(res.PerProxyWait[0].Means()), res.Overall.Mean(), 100*res.RedirectedFraction()))
	}
	return fig, nil
}

// All runs every figure in order.
func All(o Options) ([]*Figure, error) {
	funcs := []func(Options) (*Figure, error){
		Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13,
	}
	out := make([]*Figure, 0, len(funcs))
	for _, f := range funcs {
		fig, err := f(o)
		if err != nil {
			return out, err
		}
		out = append(out, fig)
	}
	return out, nil
}

func maxOf(xs []float64) float64 {
	worst := 0.0
	for _, x := range xs {
		if x > worst {
			worst = x
		}
	}
	return worst
}
