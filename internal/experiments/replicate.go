package experiments

import (
	"math"

	"repro/internal/metrics"
)

// Replication summarizes one series' peak value across seed replications
// of a figure — the reproduction's error bars. The paper reports single
// trace-driven runs; with a synthetic workload we can do better and show
// that the headline effects are not artifacts of one random stream.
type Replication struct {
	Label    string
	Peaks    []float64 // one per seed, in seed order
	PeakMean float64
	PeakStd  float64
}

// Replicate runs a figure function once per seed and aggregates each
// series' peak Y value. All other options are taken from o.
func Replicate(fig func(Options) (*Figure, error), o Options, seeds []int64) ([]Replication, error) {
	var out []Replication
	for run, seed := range seeds {
		opts := o
		opts.Seed = seed
		f, err := fig(opts)
		if err != nil {
			return nil, err
		}
		for si, s := range f.Series {
			if run == 0 {
				out = append(out, Replication{Label: s.Label})
			}
			out[si].Peaks = append(out[si].Peaks, maxOf(s.Y))
		}
	}
	for i := range out {
		var w metrics.Welford
		for _, p := range out[i].Peaks {
			w.Add(p)
		}
		out[i].PeakMean = w.Mean()
		out[i].PeakStd = w.Std()
	}
	return out, nil
}

// Spread returns the coefficient of variation (std/mean) of the peaks, 0
// for a zero mean.
func (r Replication) Spread() float64 {
	if r.PeakMean == 0 {
		return 0
	}
	return math.Abs(r.PeakStd / r.PeakMean)
}
