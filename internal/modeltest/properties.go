package modeltest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/transitive"
)

// Failure describes one property violation, with everything needed to
// reproduce it: the case seed (regenerate with Generate(rand.New(
// rand.NewSource(Seed)))), the full graph, and a shrunk minimal graph
// still failing the same property.
type Failure struct {
	Seed     int64    `json:"seed"`
	Property string   `json:"property"`
	Msg      string   `json:"msg"`
	Graph    *Graph   `json:"graph"`
	Shrunk   *Graph   `json:"shrunk,omitempty"`
	Mutation Mutation `json:"mutation,omitempty"`
}

// Error formats the failure with its replay seed front and center.
func (f *Failure) Error() string {
	s := fmt.Sprintf("modeltest: property %q failed (replay: -seed %d -iters 1): %s\n  graph: %s",
		f.Property, f.Seed, f.Msg, f.Graph)
	if f.Shrunk != nil {
		s += fmt.Sprintf("\n  shrunk: %s", f.Shrunk)
	}
	return s
}

// Mutation selects a deliberately wrong system-under-test for the
// mutation smoke test: the suite must catch each one (proving the
// properties have teeth), and must catch none when MutNone.
type Mutation int

const (
	// MutNone tests the real code.
	MutNone Mutation = iota
	// MutTransitive emulates a transitive-layer bug: the cycle-free
	// restriction is forgotten, so flow coefficients are computed over
	// walks (transitive.Approx) instead of simple paths and capacities
	// are inflated on any cyclic graph.
	MutTransitive
	// MutLP emulates an LP-layer bug: the solver returns a feasible but
	// suboptimal vertex (modeled by the greedy baseline planner standing
	// in for the LP optimum).
	MutLP
	// MutCore emulates a core-layer round-off repair bug: the largest
	// take silently loses a sliver, breaking Σ takes = amount.
	MutCore
)

// String names the mutation for reports.
func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutTransitive:
		return "transitive"
	case MutLP:
		return "lp"
	case MutCore:
		return "core"
	default:
		return fmt.Sprintf("mutation(%d)", int(m))
	}
}

// planFractions are the request sizes exercised per requester, as
// fractions of the requester's oracle capacity. 1.0 probes the boundary
// where every source is at its cap.
var planFractions = []float64{0.35, 0.8, 1.0}

// CheckGraph runs every property on one graph against the real code.
// It returns the first violation, or nil. The checks are deterministic:
// requesters, request sizes, scalings and permutations are enumerated,
// not sampled, so a failing graph fails identically on replay and under
// the shrinker.
func CheckGraph(g *Graph) *Failure {
	return CheckGraphMutated(g, MutNone)
}

// CheckGraphMutated is CheckGraph with a deliberate bug injected into the
// system under test (see Mutation). The mutation smoke test uses it to
// prove the property suite detects each class of defect.
func CheckGraphMutated(g *Graph, mut Mutation) *Failure {
	c, err := newChecker(g, mut)
	if err != nil {
		return &Failure{Property: "construct", Msg: err.Error(), Graph: g, Mutation: mut}
	}
	for _, check := range []struct {
		name string
		fn   func() error
	}{
		{"transitive-oracle", c.checkTransitiveOracle},
		{"approx-upper-bound", c.checkApproxUpperBound},
		{"capacity-oracle", c.checkCapacityOracle},
		{"plan-equations", c.checkPlans},
		{"plan-insufficient", c.checkInsufficient},
		{"scale-invariance", c.checkScaling},
		{"monotonic-funding", c.checkMonotonicity},
		{"permutation-invariance", c.checkPermutation},
		{"plan-incremental", c.checkIncrementalPlan},
	} {
		if err := check.fn(); err != nil {
			return &Failure{Property: check.name, Msg: err.Error(), Graph: g, Mutation: mut}
		}
	}
	return nil
}

// checker binds one graph to its oracle and its (possibly mutated)
// system under test.
type checker struct {
	g   *Graph
	o   *Oracle
	al  *core.Allocator
	mut Mutation
	// greedy stands in for the LP under MutLP.
	greedy *core.Greedy
}

func newChecker(g *Graph, mut Mutation) (*checker, error) {
	al, err := core.NewAllocator(g.S, g.A, core.Config{Level: g.Level})
	if err != nil {
		return nil, fmt.Errorf("allocator construction: %w", err)
	}
	c := &checker{g: g, o: NewOracle(g), al: al, mut: mut}
	if mut == MutLP {
		c.greedy, err = core.NewGreedy(g.S, g.A, core.Config{Level: g.Level})
		if err != nil {
			return nil, fmt.Errorf("greedy construction: %w", err)
		}
	}
	return c, nil
}

// sutCapacities returns the system under test's capacity vector.
func (c *checker) sutCapacities(v []float64) []float64 {
	if c.mut == MutTransitive {
		// Bug model: coefficients computed over walks instead of
		// cycle-free chains — Approx standing in where Exact belongs.
		t := transitive.Approx(c.g.S, c.g.maxLevel())
		return transitive.Capacities(v, transitive.Cap(t), c.g.A)
	}
	return c.al.Capacities(v)
}

// sutPlan returns the system under test's allocation for a request.
func (c *checker) sutPlan(v []float64, requester int, amount float64) (*core.Allocation, error) {
	if c.mut == MutLP {
		return c.greedy.Plan(v, requester, amount)
	}
	plan, err := c.al.Plan(v, requester, amount)
	if err == nil && c.mut == MutCore {
		mutateDropResidual(plan)
	}
	return plan, err
}

// mutateDropResidual models a normalizeTakes bug: the largest take
// silently loses a sliver without the allocation being reported
// infeasible.
func mutateDropResidual(plan *core.Allocation) {
	best, bestTake := -1, 0.0
	for i, t := range plan.Take {
		if t > bestTake {
			best, bestTake = i, t
		}
	}
	if best < 0 {
		return
	}
	d := math.Min(bestTake, 0.01+bestTake/8)
	plan.Take[best] -= d
	plan.NewV[best] += d
}

func (c *checker) checkTransitiveOracle() error {
	got := transitive.Exact(c.g.S, c.g.maxLevel())
	want := c.o.T
	for i := range want {
		for j := range want[i] {
			if math.Abs(got[i][j]-want[i][j]) > 1e-9*(1+math.Abs(want[i][j])) {
				return fmt.Errorf("T[%d][%d] = %g, recursive oracle says %g", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}

func (c *checker) checkApproxUpperBound() error {
	approx := transitive.Approx(c.g.S, c.g.maxLevel())
	for i := range approx {
		for j := range approx[i] {
			if approx[i][j] < c.o.T[i][j]-1e-9*(1+c.o.T[i][j]) {
				return fmt.Errorf("Approx[%d][%d] = %g below Exact %g (walks must dominate simple paths)",
					i, j, approx[i][j], c.o.T[i][j])
			}
		}
	}
	return nil
}

func (c *checker) checkCapacityOracle() error {
	got := c.sutCapacities(c.g.V)
	want := c.o.Capacities(c.g.V)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			return fmt.Errorf("C[%d] = %g, brute-force oracle says %g", i, got[i], want[i])
		}
	}
	return nil
}

// checkPlans exercises every requester at several request sizes: the
// allocation must satisfy eqns. 1–6 against the oracle, and its realized
// θ must match the independent reference LP's within the tie-break and
// numerical tolerances.
func (c *checker) checkPlans() error {
	caps := c.o.Capacities(c.g.V)
	scale := 1.0
	for _, x := range c.g.V {
		scale = math.Max(scale, x)
	}
	for r := 0; r < c.g.N; r++ {
		for _, frac := range planFractions {
			amount := caps[r] * frac
			if amount <= 0 {
				continue
			}
			plan, err := c.sutPlan(c.g.V, r, amount)
			if err != nil {
				return fmt.Errorf("Plan(requester=%d, amount=%g of C=%g): %w", r, amount, caps[r], err)
			}
			if err := c.o.CheckAllocation(c.g.V, r, amount, plan); err != nil {
				return fmt.Errorf("requester %d amount %g: %w", r, amount, err)
			}
			ref, err := c.o.PlanTheta(c.g.V, r, amount)
			if err != nil {
				return fmt.Errorf("requester %d amount %g: %w", r, amount, err)
			}
			tieTol := c.o.tieTolerance(c.g.V) + 1e-6*scale
			if plan.Theta > ref+tieTol {
				return fmt.Errorf("requester %d amount %g: θ = %g not minimal, reference LP reaches %g (tol %g)",
					r, amount, plan.Theta, ref, tieTol)
			}
			if plan.Theta < ref-1e-6*scale {
				return fmt.Errorf("requester %d amount %g: θ = %g beats the reference optimum %g — oracle disagreement",
					r, amount, plan.Theta, ref)
			}
		}
	}
	return nil
}

// checkInsufficient: a request strictly beyond C_A must be refused with
// ErrInsufficient (eq. 2's feasibility boundary).
func (c *checker) checkInsufficient() error {
	caps := c.o.Capacities(c.g.V)
	for r := 0; r < c.g.N; r++ {
		over := caps[r]*1.01 + 1
		_, err := c.al.Plan(c.g.V, r, over)
		if !errors.Is(err, core.ErrInsufficient) {
			// The error is reported, not propagated (it may even be nil —
			// that IS the failure), so %v is the right verb here.
			//lint:ignore sharingvet/errwrap property-failure description, not error propagation; err may be nil
			return fmt.Errorf("Plan(requester=%d, amount=%g > C=%g) = %v, want ErrInsufficient", r, over, caps[r], err)
		}
	}
	return nil
}

// checkScaling: with only relative agreements the whole model is
// homogeneous of degree one — scaling every availability by λ scales
// capacities, takes and θ by λ. Absolute agreements (fixed quantities)
// legitimately break this, so those graphs are skipped.
func (c *checker) checkScaling() error {
	if c.g.A != nil {
		return nil
	}
	const lambda = 2.0
	scaled := make([]float64, c.g.N)
	for i, x := range c.g.V {
		scaled[i] = x * lambda
	}
	baseCaps := c.sutCapacities(c.g.V)
	scaledCaps := c.sutCapacities(scaled)
	scale := 1.0
	for _, x := range scaled {
		scale = math.Max(scale, x)
	}
	for i := range baseCaps {
		if math.Abs(scaledCaps[i]-lambda*baseCaps[i]) > 1e-7*scale {
			return fmt.Errorf("C[%d](λV) = %g, want λ·C = %g", i, scaledCaps[i], lambda*baseCaps[i])
		}
	}
	caps := c.o.Capacities(c.g.V)
	for r := 0; r < c.g.N; r++ {
		amount := caps[r] * 0.6
		if amount <= 0 {
			continue
		}
		base, err := c.sutPlan(c.g.V, r, amount)
		if err != nil {
			return fmt.Errorf("base plan (requester %d): %w", r, err)
		}
		up, err := c.sutPlan(scaled, r, amount*lambda)
		if err != nil {
			return fmt.Errorf("scaled plan (requester %d): %w", r, err)
		}
		if math.Abs(up.Theta-lambda*base.Theta) > 1e-5*scale {
			return fmt.Errorf("requester %d: θ(λV, λx) = %g, want λθ = %g", r, up.Theta, lambda*base.Theta)
		}
		for i := range base.Take {
			if math.Abs(up.Take[i]-lambda*base.Take[i]) > 1e-5*scale {
				return fmt.Errorf("requester %d: take[%d](λV, λx) = %g, want λ·take = %g",
					r, i, up.Take[i], lambda*base.Take[i])
			}
		}
	}
	return nil
}

// checkMonotonicity: capacities are non-decreasing in every availability
// (each U_ki term is), so added funding can never shrink anyone's reach or
// make a previously feasible request infeasible.
func (c *checker) checkMonotonicity() error {
	base := c.sutCapacities(c.g.V)
	for k := 0; k < c.g.N; k++ {
		bumped := append([]float64(nil), c.g.V...)
		bumped[k] += 1
		after := c.sutCapacities(bumped)
		for i := range base {
			if after[i] < base[i]-1e-9*(1+base[i]) {
				return fmt.Errorf("funding V[%d] += 1 shrank C[%d]: %g -> %g", k, i, base[i], after[i])
			}
		}
	}
	return nil
}

// checkPermutation: principal identity is arbitrary — relabeling
// principals permutes capacities and leaves the optimal θ unchanged (the
// take vectors may differ when optima tie, so only θ and C are compared).
func (c *checker) checkPermutation() error {
	n := c.g.N
	perm := make([]int, n) // rotation: old index i becomes new index perm[i]
	for i := range perm {
		perm[i] = (i + 1) % n
	}
	pg := permuteGraph(c.g, perm)
	pal, err := core.NewAllocator(pg.S, pg.A, core.Config{Level: pg.Level})
	if err != nil {
		return fmt.Errorf("permuted allocator: %w", err)
	}
	base := c.sutCapacities(c.g.V)
	permCaps := pal.Capacities(pg.V)
	scale := 1.0
	for _, x := range base {
		scale = math.Max(scale, x)
	}
	for i := 0; i < n; i++ {
		if math.Abs(permCaps[perm[i]]-base[i]) > 1e-7*scale {
			return fmt.Errorf("C[%d] = %g but permuted C[%d] = %g", i, base[i], perm[i], permCaps[perm[i]])
		}
	}
	if c.mut != MutNone {
		return nil // θ comparison below exercises the real allocator only
	}
	caps := c.o.Capacities(c.g.V)
	tieTol := 2*c.o.tieTolerance(c.g.V) + 1e-6*scale
	for r := 0; r < n; r++ {
		amount := caps[r] * 0.6
		if amount <= 0 {
			continue
		}
		plan, err := c.al.Plan(c.g.V, r, amount)
		if err != nil {
			return fmt.Errorf("plan (requester %d): %w", r, err)
		}
		pplan, err := pal.Plan(pg.V, perm[r], amount)
		if err != nil {
			return fmt.Errorf("permuted plan (requester %d): %w", perm[r], err)
		}
		if math.Abs(plan.Theta-pplan.Theta) > tieTol {
			return fmt.Errorf("requester %d: θ = %g but permuted θ = %g (identity must not matter)",
				r, plan.Theta, pplan.Theta)
		}
	}
	return nil
}

// permuteGraph relabels principals: new index perm[i] carries old i's row,
// column and availability.
func permuteGraph(g *Graph, perm []int) *Graph {
	out := &Graph{N: g.N, Level: g.Level, Overdraft: g.Overdraft, Shape: g.Shape}
	out.S = zeroMatrix(g.N)
	if g.A != nil {
		out.A = zeroMatrix(g.N)
	}
	out.V = make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		out.V[perm[i]] = g.V[i]
		for j := 0; j < g.N; j++ {
			out.S[perm[i]][perm[j]] = g.S[i][j]
			if g.A != nil {
				out.A[perm[i]][perm[j]] = g.A[i][j]
			}
		}
	}
	return out
}

// Options configures a Run campaign.
type Options struct {
	// Seed is the base seed; case i uses seed Seed+i, and a reported
	// failure's Seed replays with Iters = 1.
	Seed int64
	// Iters is how many generated graphs to check.
	Iters int
	// Mutation injects a deliberate bug (mutation smoke tests only).
	Mutation Mutation
	// NoShrink skips minimization of failing graphs.
	NoShrink bool
}

// Report summarizes a campaign.
type Report struct {
	// Cases is how many graphs were checked (including a failing one).
	Cases int
	// Failure is the first property violation, nil when all passed.
	Failure *Failure
}

// Run generates and checks Iters graphs. It stops at the first failure,
// shrinks it to a minimal failing graph, and returns it with its replay
// seed; the same Options always reproduce the same outcome.
func Run(opts Options) *Report {
	for i := 0; i < opts.Iters; i++ {
		caseSeed := opts.Seed + int64(i)
		g := Generate(rand.New(rand.NewSource(caseSeed)))
		f := CheckGraphMutated(g, opts.Mutation)
		if f == nil {
			continue
		}
		f.Seed = caseSeed
		if !opts.NoShrink {
			f.Shrunk = Shrink(g, func(cand *Graph) bool {
				sf := CheckGraphMutated(cand, opts.Mutation)
				return sf != nil && sf.Property == f.Property
			})
		}
		return &Report{Cases: i + 1, Failure: f}
	}
	return &Report{Cases: opts.Iters}
}
