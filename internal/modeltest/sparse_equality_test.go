package modeltest

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/agreement"
	"repro/internal/core"
)

// Sparse-vs-dense bit-equality: an allocator built from CSR inputs
// (NewAllocatorSparse) must be indistinguishable — to the last bit —
// from one built from the equivalent dense matrices, across the whole
// generated taxonomy. Closure rows, capacities, and every Plan outcome
// are compared with ==, not a tolerance: the sparse path reorders no
// arithmetic, so drift of even one ulp is a refactor bug. The same
// equality must hold with ComponentLP on (both allocators then share the
// component formulation, so their LPs pivot identically).

// toSparse converts a dense matrix to the CSR builder form, dropping
// exact zeros — the inverse of SparseMatrix.Dense.
func toSparse(m [][]float64, n int) *agreement.SparseMatrix {
	b := agreement.NewSparseBuilder(n)
	for i, row := range m {
		for j, v := range row {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

func bitEqualVec(t *testing.T, what string, dense, sparse []float64) {
	t.Helper()
	if len(dense) != len(sparse) {
		t.Fatalf("%s: length %d (dense) vs %d (sparse)", what, len(dense), len(sparse))
	}
	for i := range dense {
		if dense[i] != sparse[i] {
			t.Fatalf("%s[%d]: %v (dense) vs %v (sparse) — paths diverged by %g",
				what, i, dense[i], sparse[i], dense[i]-sparse[i])
		}
	}
}

func TestSparseDenseBitEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag))
	cases := 120
	if testing.Short() {
		cases = 30
	}
	for c := 0; c < cases; c++ {
		g := Generate(rng)
		for _, componentLP := range []bool{false, true} {
			cfg := core.Config{Level: g.Level, ComponentLP: componentLP}
			dense, derr := core.NewAllocator(g.S, g.A, cfg)
			var sa *agreement.SparseMatrix
			if g.A != nil {
				sa = toSparse(g.A, g.N)
			}
			sparse, serr := core.NewAllocatorSparse(toSparse(g.S, g.N), sa, cfg)
			if (derr == nil) != (serr == nil) {
				t.Fatalf("case %d: construction disagrees: dense %v, sparse %v\n%s", c, derr, serr, g)
			}
			if derr != nil {
				continue // both refused (e.g. closure budget); nothing to compare
			}

			dk, sk := dense.FlowCoefficients(), sparse.FlowCoefficients()
			for i := range dk {
				bitEqualVec(t, "closure row", dk[i], sk[i])
			}
			bitEqualVec(t, "capacities", dense.Capacities(g.V), sparse.Capacities(g.V))

			caps := dense.Capacities(g.V)
			for r := 0; r < g.N; r++ {
				for _, amount := range []float64{0.5, caps[r], caps[r] * 1.5} {
					if amount <= 0 {
						continue
					}
					dp, dpErr := dense.Plan(g.V, r, amount)
					sp, spErr := sparse.Plan(g.V, r, amount)
					if (dpErr == nil) != (spErr == nil) ||
						errors.Is(dpErr, core.ErrInsufficient) != errors.Is(spErr, core.ErrInsufficient) {
						t.Fatalf("case %d componentLP=%v: Plan(%d, %g) disagrees: dense %v, sparse %v\n%s",
							c, componentLP, r, amount, dpErr, spErr, g)
					}
					if dpErr != nil {
						continue
					}
					if dp.Theta != sp.Theta {
						t.Fatalf("case %d componentLP=%v: Plan(%d, %g) theta %v (dense) vs %v (sparse)\n%s",
							c, componentLP, r, amount, dp.Theta, sp.Theta, g)
					}
					bitEqualVec(t, "take", dp.Take, sp.Take)
					bitEqualVec(t, "newV", dp.NewV, sp.NewV)
				}
			}
		}
	}
}
