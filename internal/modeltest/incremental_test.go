package modeltest

import (
	"fmt"
	"math/rand"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/grm"
	"repro/internal/store"
)

// TestIncrementalEquivalenceAfterRecover is the WAL leg of the
// plan-incremental property: a live GRM that reached its planner through
// incremental share/register patches must agree — bit for bit — with a
// fresh server that recovered the same history from the WAL and rebuilt
// its planner from the replayed agreement books. A seeded churn schedule
// (reports, relative and absolute shares, revocations, allocations)
// drives the live server over real connections first, so the planner is
// genuinely patched, not rebuilt; then both servers answer the same
// capacity query and the same allocation request from identical books.
func TestIncrementalEquivalenceAfterRecover(t *testing.T) {
	wal := store.NewMemLog()
	srv := grm.NewServer(core.Config{}, nil)
	if err := srv.Recover(wal); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	const n = 4
	lrms := make([]*grm.LRM, n)
	for p := 0; p < n; p++ {
		lrm, err := grm.Dial(l.Addr().String(), fmt.Sprintf("p%d", p), 10+float64(5*p))
		if err != nil {
			t.Fatalf("dial p%d: %v", p, err)
		}
		defer lrm.Close()
		lrms[p] = lrm
	}

	rng := rand.New(rand.NewSource(11))
	var tickets []int
	for step := 0; step < 60; step++ {
		p := rng.Intn(n)
		switch rng.Intn(5) {
		case 0:
			if err := lrms[p].Report(1 + rng.Float64()*20); err != nil {
				t.Fatalf("step %d: report: %v", step, err)
			}
		case 1:
			to := (p + 1 + rng.Intn(n-1)) % n
			tk, err := lrms[p].ShareRelative(to, 0.05+rng.Float64()*0.2)
			if err != nil {
				t.Fatalf("step %d: share %d->%d: %v", step, p, to, err)
			}
			tickets = append(tickets, tk)
		case 2:
			to := (p + 1 + rng.Intn(n-1)) % n
			tk, err := lrms[p].ShareAbsolute(to, 0.5+rng.Float64())
			if err != nil {
				t.Fatalf("step %d: absolute share %d->%d: %v", step, p, to, err)
			}
			tickets = append(tickets, tk)
		case 3:
			if len(tickets) == 0 {
				continue
			}
			i := rng.Intn(len(tickets))
			if err := lrms[p].Revoke(tickets[i]); err != nil {
				t.Fatalf("step %d: revoke %d: %v", step, tickets[i], err)
			}
			tickets = append(tickets[:i], tickets[i+1:]...)
		default:
			// Allocations force the planner into existence, so later
			// shares hit the incremental patch path; release immediately
			// so outstanding leases don't complicate the books.
			reply, err := lrms[p].Allocate(0.25)
			if err != nil {
				t.Fatalf("step %d: allocate: %v", step, err)
			}
			if err := lrms[p].Release(reply.Lease); err != nil {
				t.Fatalf("step %d: release: %v", step, err)
			}
		}
	}

	liveAvail, liveCaps, err := lrms[0].Capacities()
	if err != nil {
		t.Fatal(err)
	}

	// Recover a second server from the WAL as it stands. Replay rebuilds
	// the agreement books record by record; its planner is constructed
	// from scratch on first use — the full-recompute side of the
	// equivalence. (Anything the live server journals from here on is
	// invisible to the recovered one: Recover reads the log once.)
	srv2 := grm.NewServer(core.Config{}, nil)
	if err := srv2.Recover(wal); err != nil {
		t.Fatalf("recover: %v", err)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Close()

	// Re-attaching "p0" resets its availability to the dialed capacity,
	// so restore the live value explicitly before comparing.
	p0b, err := grm.Dial(l2.Addr().String(), "p0", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer p0b.Close()
	if err := p0b.Report(liveAvail[0]); err != nil {
		t.Fatal(err)
	}

	recAvail, recCaps, err := p0b.Capacities()
	if err != nil {
		t.Fatal(err)
	}
	if len(recCaps) != n || len(liveCaps) != n {
		t.Fatalf("capacity vectors: live %d, recovered %d, want %d", len(liveCaps), len(recCaps), n)
	}
	for i := 0; i < n; i++ {
		//lint:ignore sharingvet/floateq recovery replay is pinned bit-identical to the live incremental state
		if recAvail[i] != liveAvail[i] || recCaps[i] != liveCaps[i] {
			t.Errorf("principal %d: live (avail=%g, cap=%g), recovered (avail=%g, cap=%g)",
				i, liveAvail[i], liveCaps[i], recAvail[i], recCaps[i])
		}
	}

	// The same allocation request against the same books: the live
	// server's incrementally patched planner and the recovered server's
	// freshly rebuilt one must return the identical solution.
	amount := liveCaps[0] * 0.5
	livePlan, err := lrms[0].Allocate(amount)
	if err != nil {
		t.Fatalf("live allocate: %v", err)
	}
	recPlan, err := p0b.Allocate(amount)
	if err != nil {
		t.Fatalf("recovered allocate: %v", err)
	}
	//lint:ignore sharingvet/floateq recovery replay is pinned bit-identical to the live incremental state
	if recPlan.Theta != livePlan.Theta {
		t.Errorf("θ = %g live, %g recovered", livePlan.Theta, recPlan.Theta)
	}
	if len(recPlan.Takes) != len(livePlan.Takes) {
		t.Fatalf("takes: live %d entries, recovered %d", len(livePlan.Takes), len(recPlan.Takes))
	}
	for i := range livePlan.Takes {
		//lint:ignore sharingvet/floateq recovery replay is pinned bit-identical to the live incremental state
		if recPlan.Takes[i] != livePlan.Takes[i] {
			t.Errorf("take[%d] = %g live, %g recovered", i, livePlan.Takes[i], recPlan.Takes[i])
		}
	}
}
