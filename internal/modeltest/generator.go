package modeltest

import (
	"math"
	"math/rand"
)

// Generation bounds. Sizes stay small on purpose: the oracle enumerates
// simple paths recursively and the shrinker wants room to bisect, and
// experience with model-based testing is that interesting enforcement bugs
// reproduce at 3–6 principals. Values are rounded to a coarse grid so
// generated cases print short and shrink cleanly.
const (
	minPrincipals = 2
	maxPrincipals = 7
	valueGrid     = 1.0 / 16 // shares and capacities land on multiples of this
)

// Generate draws one random agreement graph from rng, covering the
// taxonomy dimensions: shape (complete / sparse / ring / hierarchical /
// irregular), relative vs absolute agreements, overdraft on/off, and the
// transitivity level. The same rng state always yields the same graph.
func Generate(rng *rand.Rand) *Graph {
	n := minPrincipals + rng.Intn(maxPrincipals-minPrincipals+1)
	shape := Shape(rng.Intn(5))
	overdraft := rng.Intn(4) == 0 // 25% of cases lift the row-sum restriction

	g := &Graph{N: n, Shape: shape, Overdraft: overdraft}
	g.S = relativeMatrix(rng, n, shape, overdraft)

	// Absolute agreements ride along in ~40% of cases, on a handful of
	// random ordered pairs (the paper treats A as an addition to the
	// relative flows, capped by what the source owns).
	if rng.Intn(5) < 2 {
		g.A = zeroMatrix(n)
		edges := 1 + rng.Intn(n)
		for e := 0; e < edges; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			g.A[i][j] = grid(rng.Float64() * 4)
		}
	}

	g.V = make([]float64, n)
	for i := range g.V {
		switch rng.Intn(8) {
		case 0:
			g.V[i] = 0 // exhausted principals are a distinct regime
		default:
			g.V[i] = grid(rng.Float64() * 10)
		}
	}

	// Level: full closure half the time, otherwise a random partial level
	// (1 = direct agreements only — the other regime the paper evaluates).
	if rng.Intn(2) == 0 {
		g.Level = 0
	} else {
		g.Level = 1 + rng.Intn(maxInt(n-1, 1))
	}
	return g
}

// relativeMatrix wires the S matrix in the requested shape. Shares are
// drawn per edge; without overdraft each row is rescaled under 1.
func relativeMatrix(rng *rand.Rand, n int, shape Shape, overdraft bool) [][]float64 {
	s := zeroMatrix(n)
	edge := func(i, j int) {
		if i == j {
			return
		}
		s[i][j] = grid(0.05 + rng.Float64()*0.9)
	}
	switch shape {
	case Complete:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				edge(i, j)
			}
		}
	case Sparse:
		degree := 1 + rng.Intn(maxInt(n/2, 1))
		for i := 0; i < n; i++ {
			perm := rng.Perm(n)
			added := 0
			for _, j := range perm {
				if j == i || added == degree {
					continue
				}
				edge(i, j)
				added++
			}
		}
	case Ring:
		for i := 0; i < n; i++ {
			edge(i, (i+1)%n)
		}
	case Hierarchical:
		groupSize := 2
		if n >= 6 && rng.Intn(2) == 0 {
			groupSize = 3
		}
		groups := maxInt(n/groupSize, 1)
		for g := 0; g < groups; g++ {
			base := g * groupSize
			hi := minInt(base+groupSize, n)
			for a := base; a < hi; a++ {
				for b := base; b < hi; b++ {
					edge(a, b)
				}
			}
		}
		// Leftover principals (n not divisible) join the last group.
		for p := groups * groupSize; p < n; p++ {
			base := (groups - 1) * groupSize
			edge(p, base)
			edge(base, p)
		}
		// Gateways: first member of each group to the next group's first.
		for g := 0; g < groups; g++ {
			from := g * groupSize
			to := ((g + 1) % groups) * groupSize
			edge(from, to)
		}
	case Irregular:
		p := 0.2 + rng.Float64()*0.6
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < p {
					edge(i, j)
				}
			}
		}
	}
	if !overdraft {
		normalizeRows(s)
	}
	return s
}

// normalizeRows rescales any row whose shares sum above 1 back under it,
// keeping values on the grid (the basic model's Σ_k S_ik ≤ 1 restriction).
func normalizeRows(s [][]float64) {
	for i, row := range s {
		var sum float64
		for j, v := range row {
			if j != i {
				sum += v
			}
		}
		if sum <= 1 {
			continue
		}
		scale := 1 / (sum + valueGrid)
		for j := range row {
			if j != i {
				row[j] = gridDown(row[j] * scale)
			}
		}
	}
}

// grid snaps x onto the coarse value grid (rounding to nearest, so the
// result can be 0 for tiny x).
func grid(x float64) float64 {
	return math.Round(x/valueGrid) * valueGrid
}

// gridDown snaps x down onto the grid (never increasing it, so row-sum
// rescaling cannot overshoot back above 1).
func gridDown(x float64) float64 {
	return math.Floor(x/valueGrid) * valueGrid
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
