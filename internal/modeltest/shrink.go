package modeltest

// Shrink minimizes a failing graph: it greedily applies reductions —
// removing principals, zeroing agreement edges, dropping the absolute
// matrix, rounding availabilities down — keeping each change only while
// stillFails reports the candidate still violates the same property. The
// result is a local minimum: no single remaining reduction preserves the
// failure. stillFails must be deterministic.
func Shrink(g *Graph, stillFails func(*Graph) bool) *Graph {
	cur := g.Clone()
	for {
		next := shrinkStep(cur, stillFails)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// shrinkStep tries every single reduction on cur and returns the first
// one that still fails, or nil when cur is minimal.
func shrinkStep(cur *Graph, stillFails func(*Graph) bool) *Graph {
	// 1. Remove a principal (biggest wins first: shrinks every later pass).
	for p := 0; p < cur.N; p++ {
		if cur.N <= minPrincipals {
			break
		}
		cand := removePrincipal(cur, p)
		if stillFails(cand) {
			return cand
		}
	}
	// 2. Drop the absolute matrix entirely.
	if cur.A != nil {
		cand := cur.Clone()
		cand.A = nil
		if stillFails(cand) {
			return cand
		}
	}
	// 3. Zero a single agreement edge (relative, then absolute).
	for i := 0; i < cur.N; i++ {
		for j := 0; j < cur.N; j++ {
			if cur.S[i][j] != 0 {
				cand := cur.Clone()
				cand.S[i][j] = 0
				if stillFails(cand) {
					return cand
				}
			}
			if cur.A != nil && cur.A[i][j] != 0 {
				cand := cur.Clone()
				cand.A[i][j] = 0
				if stillFails(cand) {
					return cand
				}
			}
		}
	}
	// 4. Simplify values: zero an availability, then halve it (snapped to
	// the grid), then the same for agreement weights toward 1 or 0.
	for i := 0; i < cur.N; i++ {
		if cur.V[i] != 0 {
			cand := cur.Clone()
			cand.V[i] = 0
			if stillFails(cand) {
				return cand
			}
			cand = cur.Clone()
			cand.V[i] = gridDown(cur.V[i] / 2)
			if cand.V[i] != cur.V[i] && stillFails(cand) {
				return cand
			}
		}
	}
	for i := 0; i < cur.N; i++ {
		for j := 0; j < cur.N; j++ {
			if s := cur.S[i][j]; s != 0 && s != 1 {
				cand := cur.Clone()
				cand.S[i][j] = gridDown(s / 2)
				if cand.S[i][j] != s && stillFails(cand) {
					return cand
				}
			}
		}
	}
	// 5. Promote a partial level to full closure (fewer moving parts).
	if cur.Level != 0 {
		cand := cur.Clone()
		cand.Level = 0
		if stillFails(cand) {
			return cand
		}
	}
	return nil
}

// removePrincipal deletes principal p, compacting indices.
func removePrincipal(g *Graph, p int) *Graph {
	n := g.N - 1
	out := &Graph{N: n, Level: g.Level, Overdraft: g.Overdraft, Shape: g.Shape}
	if out.Level > n-1 {
		out.Level = 0
	}
	out.S = zeroMatrix(n)
	if g.A != nil {
		out.A = zeroMatrix(n)
	}
	out.V = make([]float64, n)
	for i, oi := 0, 0; i < g.N; i++ {
		if i == p {
			continue
		}
		out.V[oi] = g.V[i]
		for j, oj := 0, 0; j < g.N; j++ {
			if j == p {
				continue
			}
			out.S[oi][oj] = g.S[i][j]
			if g.A != nil {
				out.A[oi][oj] = g.A[i][j]
			}
			oj++
		}
		oi++
	}
	return out
}
