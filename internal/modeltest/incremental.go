package modeltest

import (
	"fmt"

	"repro/internal/core"
)

// PlanIncrementalEquivalence (the "plan-incremental" property): an
// allocator evolved through the incremental mutators — SetShare edge
// updates, SetAgreement quantity updates, availability deltas — must be
// indistinguishable from a freshly built NewAllocator over the mutated
// matrices at every step of the schedule: same capacities, same plan
// takes, same θ, bit for bit. The schedule is derived deterministically
// from the graph itself (row-major pair walk, kind cycling by step), so
// replaying a failing seed reruns the identical schedule and the shrinker
// minimizes the divergent schedule simply by minimizing the graph; the
// check stops at the first divergent step, so the reported step index is
// the minimal failing prefix.

// maxIncrementalSteps bounds the schedule per graph; divergence from a
// patched closure or a stale cache shows up within a handful of
// mutations, and CheckGraph runs on thousands of generated graphs.
const maxIncrementalSteps = 6

func (c *checker) checkIncrementalPlan() error {
	if c.mut != MutNone {
		// The injected bugs live in the planner stand-ins, not in the
		// mutator path; rerunning the schedule under them tests nothing.
		return nil
	}
	n := c.g.N
	cur := c.al
	s := cloneSquare(c.g.S)
	var a [][]float64
	if c.g.A != nil {
		a = cloneSquare(c.g.A)
	}
	v := append([]float64(nil), c.g.V...)

	step := 0
	for i := 0; i < n && step < maxIncrementalSteps; i++ {
		for j := 0; j < n && step < maxIncrementalSteps; j++ {
			if i == j {
				continue
			}
			switch step % 3 {
			case 0: // relative edge update: halve a live edge or create one
				old := s[i][j]
				next := 0.25
				if old > 0 {
					next = old / 2
				}
				d, err := cur.SetShare(i, j, old, next)
				if err != nil {
					return fmt.Errorf("step %d: SetShare(%d, %d, %g, %g): %w", step, i, j, old, next, err)
				}
				s[i][j] = next
				cur = d
			case 1: // absolute agreement update (creates A when absent)
				old := 0.0
				if a != nil {
					old = a[i][j]
				}
				next := old + 0.5
				d, err := cur.SetAgreement(i, j, old, next)
				if err != nil {
					return fmt.Errorf("step %d: SetAgreement(%d, %d, %g, %g): %w", step, i, j, old, next, err)
				}
				if a == nil {
					a = zeroMatrix(n)
				}
				a[i][j] = next
				cur = d
			default: // availability delta: no mutator, but the planner replans
				v[i] += 1
			}
			if err := compareIncremental(cur, s, a, v, c.g.Level, step%n); err != nil {
				return fmt.Errorf("incremental allocator diverged from fresh rebuild at step %d: %w", step, err)
			}
			step++
		}
	}
	return nil
}

// compareIncremental pins the evolved allocator against a from-scratch
// NewAllocator over the same matrices: capacities and one full plan must
// agree bit for bit (the incremental paths replay NewAllocator's exact
// per-row arithmetic, so this is equality, not tolerance).
func compareIncremental(cur *core.Allocator, s, a [][]float64, v []float64, level, requester int) error {
	fresh, err := core.NewAllocator(s, a, core.Config{Level: level})
	if err != nil {
		return fmt.Errorf("fresh rebuild refused matrices the mutators accepted: %w", err)
	}
	gotCaps := cur.Capacities(v)
	wantCaps := fresh.Capacities(v)
	for i := range wantCaps {
		//lint:ignore sharingvet/floateq incremental results are pinned bit-identical to the rebuild
		if gotCaps[i] != wantCaps[i] {
			return fmt.Errorf("C[%d] = %g incremental, %g fresh", i, gotCaps[i], wantCaps[i])
		}
	}
	amount := wantCaps[requester] * 0.5
	if amount <= 0 {
		return nil
	}
	got, gotErr := cur.Plan(v, requester, amount)
	want, wantErr := fresh.Plan(v, requester, amount)
	if (gotErr == nil) != (wantErr == nil) {
		//lint:ignore sharingvet/errwrap property-failure description, not error propagation; one err is nil
		return fmt.Errorf("Plan(requester=%d, amount=%g): incremental err %v, fresh err %v", requester, amount, gotErr, wantErr)
	}
	if gotErr != nil {
		return nil
	}
	//lint:ignore sharingvet/floateq incremental results are pinned bit-identical to the rebuild
	if got.Theta != want.Theta {
		return fmt.Errorf("Plan(requester=%d, amount=%g): θ = %g incremental, %g fresh", requester, amount, got.Theta, want.Theta)
	}
	for i := range want.Take {
		//lint:ignore sharingvet/floateq incremental results are pinned bit-identical to the rebuild
		if got.Take[i] != want.Take[i] || got.NewV[i] != want.NewV[i] {
			return fmt.Errorf("Plan(requester=%d, amount=%g): take[%d] = (%g, %g) incremental, (%g, %g) fresh",
				requester, amount, i, got.Take[i], got.NewV[i], want.Take[i], want.NewV[i])
		}
	}
	return nil
}

// cloneSquare deep-copies a square matrix.
func cloneSquare(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}
