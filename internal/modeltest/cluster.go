package modeltest

import (
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grm"
	"repro/internal/grm/faultnet"
	"repro/internal/store"
	"repro/internal/vclock"
)

// ClusterOptions configures one deterministic protocol-level run: a real
// grm.Server on a loopback listener, LRM clients dialing through
// fault-injectable connections, and a seeded schedule of operations
// (reports, allocations, releases, renewals, new agreements, connection
// kills, virtual-clock advances, and full GRM restarts recovering from
// the write-ahead log).
type ClusterOptions struct {
	// Seed drives everything random: cluster size, capacities, the
	// agreement graph, and the operation schedule.
	Seed int64
	// Steps is how many schedule operations to execute.
	Steps int
	// TTL is the lease time-to-live on the virtual clock. 0 means the
	// default of 10 (virtual) seconds.
	TTL time.Duration
	// Codec is the wire codec the cluster's LRMs speak. The schedule and
	// its trace are codec-independent, so the same seed must produce a
	// byte-identical trace under every codec.
	Codec grm.WireCodec
	// Tap, when non-nil, is installed on every GRM the run creates —
	// the initial server and each restart-recovered one — so a scenario
	// recorder (internal/scenario) can capture the whole schedule as a
	// replayable bundle.
	Tap grm.Tap
}

// ClusterFailure pinpoints an invariant violation in a cluster run.
type ClusterFailure struct {
	Seed int64  `json:"seed"`
	Step int    `json:"step"`
	Op   string `json:"op"`
	Msg  string `json:"msg"`
}

// Error formats the failure with its replay seed.
func (f *ClusterFailure) Error() string {
	return fmt.Sprintf("modeltest: cluster step %d (%s) violated an invariant (replay: -cluster-seed %d): %s",
		f.Step, f.Op, f.Seed, f.Msg)
}

// ClusterReport is the outcome of RunCluster.
type ClusterReport struct {
	// Steps is how many operations ran (the failing one included).
	Steps int
	// Trace records one line per operation: the op, its outcome, and the
	// availability vector afterwards. Two runs with the same options must
	// produce byte-identical traces — the determinism test compares them.
	Trace []string
	// Failure is the first invariant violation, nil when the run is clean.
	Failure *ClusterFailure
}

// ledger is the runner's independent model of the GRM's books, built from
// the protocol specification rather than the server code paths: what each
// principal has available, the high-water reported capacities that cap
// release credits, and every outstanding lease with its virtual expiry.
type ledger struct {
	avail    []float64
	reported []float64
	leases   map[int]*ledgerLease
}

type ledgerLease struct {
	takes   []float64
	expires time.Time
}

// credit returns takes to the pool, capped by reported — the release and
// expiry rule.
func (ld *ledger) credit(takes []float64) {
	for i, t := range takes {
		ld.avail[i] += t
		if ld.avail[i] > ld.reported[i] {
			ld.avail[i] = ld.reported[i]
		}
	}
}

// debit applies an allocation's takes, clamped at zero — the commit rule.
func (ld *ledger) debit(takes []float64) {
	for i, t := range takes {
		ld.avail[i] -= t
		if ld.avail[i] < 0 {
			ld.avail[i] = 0
		}
	}
}

// expire removes and credits every lease at or past its expiry, returning
// how many it reclaimed.
func (ld *ledger) expire(now time.Time) int {
	n := 0
	for token, le := range ld.leases {
		if now.Before(le.expires) {
			continue
		}
		delete(ld.leases, token)
		ld.credit(le.takes)
		n++
	}
	return n
}

// clusterNode is one principal's client-side state.
type clusterNode struct {
	lrm      *grm.LRM
	capacity float64
	// lastReport mirrors the LRM's replay-on-reconnect state.
	hasReport  bool
	lastReport float64
	// conns receives every connection this node dials; lastConn is the
	// most recent one (the live one), the kill target.
	conns    chan *faultnet.Conn
	lastConn *faultnet.Conn
	// killed marks that the live connection was severed, so the node's
	// next operation will transparently reconnect: re-register, then
	// replay lastReport. The ledger applies those effects at that moment.
	killed bool
}

// RunCluster executes one seeded cluster schedule and checks the server's
// books against the independent ledger after every operation. The server
// runs on a vclock.Virtual: leases expire exactly when the schedule's
// "advance" steps move the clock, never because the test machine was slow.
func RunCluster(opts ClusterOptions) (*ClusterReport, error) {
	if opts.Steps <= 0 {
		opts.Steps = 100
	}
	if opts.TTL <= 0 {
		opts.TTL = 10 * time.Second
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &ClusterReport{}

	vc := vclock.NewVirtual(time.Unix(1_000_000_000, 0))
	// The in-memory log is the run's durable medium: it survives the
	// schedule's GRM restarts the way a WAL directory survives a crash.
	wal := store.NewMemLog()
	srv := grm.NewServer(core.Config{}, nil)
	srv.SetClock(vc)
	srv.SetTap(opts.Tap)
	if err := srv.Recover(wal); err != nil {
		return nil, fmt.Errorf("modeltest: cluster attach wal: %w", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("modeltest: cluster listen: %w", err)
	}
	go srv.Serve(l)
	defer func() { srv.Close() }()
	addr := l.Addr().String()

	// Register the principals. Dialing (and the server accepting) before
	// SetLeaseTTL keeps the background reaper off: Serve only starts it
	// when a TTL is already configured, so the schedule's explicit Reap
	// calls are the one and only reaper — expiry counts are exact.
	n := 3 + rng.Intn(3)
	nodes := make([]*clusterNode, n)
	for p := 0; p < n; p++ {
		node := &clusterNode{
			capacity: 1 + grid(rng.Float64()*9),
			conns:    make(chan *faultnet.Conn, 8),
		}
		cfg := grm.DialConfig{
			Timeout:    10 * time.Second,
			RetryMax:   5,
			Backoff:    time.Millisecond,
			MaxBackoff: 4 * time.Millisecond,
			Codec:      opts.Codec,
			Dialer:     faultnet.Dialer(nil, node.conns),
		}
		lrm, err := grm.DialWithConfig(addr, fmt.Sprintf("p%d", p), node.capacity, cfg)
		if err != nil {
			return nil, fmt.Errorf("modeltest: cluster dial p%d: %w", p, err)
		}
		node.lrm = lrm
		defer lrm.Close()
		nodes[p] = node
	}
	srv.SetLeaseTTL(opts.TTL)

	ld := &ledger{
		avail:    make([]float64, n),
		reported: make([]float64, n),
		leases:   map[int]*ledgerLease{},
	}
	for p, node := range nodes {
		ld.avail[p] = node.capacity
		ld.reported[p] = node.capacity
	}

	// A random agreement graph: up to two outgoing relative agreements per
	// principal, fractions kept under a row sum of 1.
	for p := 0; p < n; p++ {
		budget := 0.8
		for e := 0; e < rng.Intn(3); e++ {
			to := rng.Intn(n)
			frac := grid(0.05 + rng.Float64()*0.3)
			if to == p || frac <= 0 || frac > budget {
				continue
			}
			budget -= frac
			if _, err := nodes[p].lrm.ShareRelative(to, frac); err != nil {
				return nil, fmt.Errorf("modeltest: cluster setup share p%d->p%d: %w", p, to, err)
			}
		}
	}

	// reconnectEffects applies the ledger-side consequences of the node's
	// transparent reconnect, which the LRM performs before its next
	// operation on a killed connection: re-register (availability resets to
	// the registration capacity) then replay the last report.
	reconnectEffects := func(p int) {
		node := nodes[p]
		if !node.killed {
			return
		}
		node.killed = false
		ld.avail[p] = node.capacity
		ld.reported[p] = math.Max(ld.reported[p], node.capacity)
		if node.hasReport {
			ld.avail[p] = node.lastReport
			ld.reported[p] = math.Max(ld.reported[p], node.lastReport)
		}
	}
	drainConns := func(p int) {
		for {
			select {
			case c := <-nodes[p].conns:
				nodes[p].lastConn = c
			default:
				return
			}
		}
	}
	// pingOnce proves the restarted server's accept loop is live: a
	// completed request/response exchange means Serve already read the
	// (still zero) lease TTL, so enabling the TTL afterwards keeps the
	// background reaper off and expiry stays under the schedule's explicit
	// Reap calls — same invariant as the initial dial-before-SetLeaseTTL.
	pingOnce := func() error {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer c.Close()
		if err := gob.NewEncoder(c).Encode(&grm.Request{Ping: &grm.PingRequest{}}); err != nil {
			return err
		}
		var resp grm.Response
		return gob.NewDecoder(c).Decode(&resp)
	}
	fail := func(step int, op, format string, args ...any) *ClusterReport {
		rep.Steps = step + 1
		rep.Failure = &ClusterFailure{Seed: opts.Seed, Step: step, Op: op, Msg: fmt.Sprintf(format, args...)}
		return rep
	}
	const tol = 1e-6

	// checkBooks compares the server's status view with the ledger.
	checkBooks := func() error {
		st, err := srv.Status()
		if err != nil {
			return fmt.Errorf("status: %w", err)
		}
		if len(st.Principals) != n {
			return fmt.Errorf("status lists %d principals, want %d", len(st.Principals), n)
		}
		for i, ps := range st.Principals {
			if math.Abs(ps.Available-ld.avail[i]) > tol {
				return fmt.Errorf("principal %d available = %g, ledger says %g", i, ps.Available, ld.avail[i])
			}
			if math.Abs(ps.Reported-ld.reported[i]) > tol {
				return fmt.Errorf("principal %d reported = %g, ledger says %g", i, ps.Reported, ld.reported[i])
			}
			if ps.Available < -tol || ps.Available > ps.Reported+tol {
				return fmt.Errorf("principal %d available %g outside [0, reported %g]", i, ps.Available, ps.Reported)
			}
		}
		if st.Leases != len(ld.leases) {
			return fmt.Errorf("server holds %d leases, ledger says %d", st.Leases, len(ld.leases))
		}
		return nil
	}

	tokens := func() []int {
		out := make([]int, 0, len(ld.leases))
		for t := range ld.leases {
			out = append(out, t)
		}
		// Map order is random; sort so token picks depend only on the rng.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}

	for step := 0; step < opts.Steps; step++ {
		p := rng.Intn(n)
		node := nodes[p]
		var line string
		switch op := rng.Intn(11); op {
		case 0, 1, 2: // report
			x := grid(rng.Float64() * node.capacity * 1.2)
			reconnectEffects(p)
			if err := node.lrm.Report(x); err != nil {
				return fail(step, "report", "Report(%g): %v", x, err), nil
			}
			node.hasReport, node.lastReport = true, x
			ld.avail[p] = x
			ld.reported[p] = math.Max(ld.reported[p], x)
			line = fmt.Sprintf("report p%d %g", p, x)

		case 3, 4, 5: // alloc
			reconnectEffects(p)
			availSrv, caps, err := node.lrm.Capacities()
			if err != nil {
				return fail(step, "alloc", "Capacities: %v", err), nil
			}
			for i := range availSrv {
				if math.Abs(availSrv[i]-ld.avail[i]) > tol {
					return fail(step, "alloc", "pre-alloc available[%d] = %g, ledger says %g", i, availSrv[i], ld.avail[i]), nil
				}
			}
			amount := grid(caps[p] * (0.2 + rng.Float64()*0.7))
			if amount <= 0 {
				line = fmt.Sprintf("alloc p%d skipped (no capacity)", p)
				break
			}
			before := append([]float64(nil), ld.avail...)
			reply, err := node.lrm.Allocate(amount)
			if err != nil {
				if strings.Contains(err.Error(), "insufficient") {
					// Legitimate refusal (capacity moved between the caps
					// probe and the request); the books must be untouched.
					line = fmt.Sprintf("alloc p%d %g refused", p, amount)
					break
				}
				return fail(step, "alloc", "Allocate(%g): %v", amount, err), nil
			}
			if len(reply.Takes) != n {
				return fail(step, "alloc", "reply has %d takes for %d principals", len(reply.Takes), n), nil
			}
			var sum float64
			for i, t := range reply.Takes {
				if t < -tol {
					return fail(step, "alloc", "take[%d] = %g negative", i, t), nil
				}
				if t > before[i]+tol {
					return fail(step, "alloc", "take[%d] = %g exceeds available %g", i, t, before[i]), nil
				}
				sum += t
			}
			if math.Abs(sum-amount) > tol {
				return fail(step, "alloc", "Σ takes = %g, requested %g", sum, amount), nil
			}
			if reply.Theta < -tol {
				return fail(step, "alloc", "θ = %g negative", reply.Theta), nil
			}
			if _, dup := ld.leases[reply.Lease]; dup {
				return fail(step, "alloc", "lease token %d reused", reply.Lease), nil
			}
			ld.debit(reply.Takes)
			ld.leases[reply.Lease] = &ledgerLease{
				takes:   append([]float64(nil), reply.Takes...),
				expires: vc.Now().Add(opts.TTL),
			}
			line = fmt.Sprintf("alloc p%d %g lease=%d theta=%.9g", p, amount, reply.Lease, reply.Theta)

		case 6: // release
			reconnectEffects(p)
			ts := tokens()
			if len(ts) == 0 {
				// Nothing outstanding: a bogus token must be refused
				// without touching the books.
				if err := node.lrm.Release(1 << 30); err == nil {
					return fail(step, "release", "bogus lease accepted"), nil
				}
				line = fmt.Sprintf("release p%d bogus refused", p)
				break
			}
			token := ts[rng.Intn(len(ts))]
			if err := node.lrm.Release(token); err != nil {
				return fail(step, "release", "Release(%d): %v", token, err), nil
			}
			ld.credit(ld.leases[token].takes)
			delete(ld.leases, token)
			line = fmt.Sprintf("release p%d lease=%d", p, token)

		case 7: // renew
			ts := tokens()
			if len(ts) == 0 {
				// No RPC is made on this path, so no reconnect happens
				// either — the ledger must not apply its effects.
				line = fmt.Sprintf("renew p%d skipped (no leases)", p)
				break
			}
			reconnectEffects(p)
			token := ts[rng.Intn(len(ts))]
			ttl, err := node.lrm.Renew(token)
			if err != nil {
				return fail(step, "renew", "Renew(%d): %v", token, err), nil
			}
			if ttl != opts.TTL {
				return fail(step, "renew", "renewed TTL = %v, want %v", ttl, opts.TTL), nil
			}
			ld.leases[token].expires = vc.Now().Add(opts.TTL)
			line = fmt.Sprintf("renew p%d lease=%d", p, token)

		case 8: // kill the live connection; next op reconnects
			drainConns(p)
			if node.lastConn == nil {
				line = fmt.Sprintf("kill p%d skipped (no conn)", p)
				break
			}
			node.lastConn.Kill()
			node.lastConn = nil
			node.killed = true
			line = fmt.Sprintf("kill p%d", p)

		case 9: // advance the virtual clock and reap
			// Keep advances on a whole-millisecond grid: the scenario
			// recorder captures timestamps at millisecond resolution, and a
			// sub-millisecond advance would shift lease-expiry boundaries
			// between a recording and its replay.
			d := (opts.TTL / 3 * time.Duration(1+rng.Intn(5))).Truncate(time.Millisecond)
			vc.Advance(d)
			now := vc.Now()
			reaped := srv.Reap()
			expired := ld.expire(now)
			if reaped != expired {
				return fail(step, "advance", "server reaped %d leases at +%v, ledger expired %d", reaped, d, expired), nil
			}
			line = fmt.Sprintf("advance %v reaped=%d", d, reaped)

		case 10: // kill the whole GRM and recover it from the WAL
			compacted := rng.Intn(2) == 0
			if compacted {
				if err := srv.Compact(); err != nil {
					return fail(step, "restart", "Compact: %v", err), nil
				}
			}
			if err := srv.Close(); err != nil {
				return fail(step, "restart", "Close: %v", err), nil
			}
			// Every live connection died with the server; each node's next
			// RPC transparently reconnects (re-register + replay report).
			for q := range nodes {
				drainConns(q)
				nodes[q].lastConn = nil
				nodes[q].killed = true
			}
			srv = grm.NewServer(core.Config{}, nil)
			srv.SetClock(vc)
			srv.SetTap(opts.Tap)
			if err := srv.Recover(wal); err != nil {
				return fail(step, "restart", "Recover: %v", err), nil
			}
			l, err := net.Listen("tcp", addr)
			if err != nil {
				return fail(step, "restart", "relisten %s: %v", addr, err), nil
			}
			go srv.Serve(l)
			if err := pingOnce(); err != nil {
				return fail(step, "restart", "post-restart ping: %v", err), nil
			}
			srv.SetLeaseTTL(opts.TTL)
			line = fmt.Sprintf("restart compact=%v leases=%d", compacted, len(ld.leases))
		}

		if err := checkBooks(); err != nil {
			return fail(step, "invariant", "after %q: %v", line, err), nil
		}
		rep.Trace = append(rep.Trace, fmt.Sprintf("%4d %s | avail=%s", step, line, fmtVec(ld.avail)))
		rep.Steps = step + 1
	}
	return rep, nil
}

// fmtVec renders a float vector compactly and stably for the trace.
func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.9g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
