package modeltest

import (
	"flag"
	"math/rand"
	"testing"
)

var (
	seedFlag  = flag.Int64("seed", 1, "base seed for the model-based property campaign")
	itersFlag = flag.Int("iters", 150, "number of generated graphs to check")
)

// TestModelProperties is the main campaign: generate graphs from the
// seeded stream and check every paper invariant on each. Replay a failure
// with: go test ./internal/modeltest -run TestModelProperties -seed <s> -iters 1
func TestModelProperties(t *testing.T) {
	rep := Run(Options{Seed: *seedFlag, Iters: *itersFlag})
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Error())
	}
	t.Logf("checked %d graphs (base seed %d)", rep.Cases, *seedFlag)
}

// TestModelGeneratorCoverage makes sure the seeded stream actually spans
// the taxonomy: every shape, both overdraft settings, absolute matrices,
// and partial transitivity levels all appear.
func TestModelGeneratorCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(*seedFlag))
	shapes := map[Shape]int{}
	var overdraft, plain, withA, partial int
	for i := 0; i < 400; i++ {
		g := Generate(rng)
		shapes[g.Shape]++
		if g.Overdraft {
			overdraft++
		} else {
			plain++
		}
		if g.A != nil {
			withA++
		}
		if g.Level != 0 {
			partial++
		}
		if g.N < minPrincipals || g.N > maxPrincipals {
			t.Fatalf("graph %d has %d principals, outside [%d, %d]", i, g.N, minPrincipals, maxPrincipals)
		}
		for j := range g.S {
			if g.S[j][j] != 0 {
				t.Fatalf("graph %d has self-agreement S[%d][%d] = %g", i, j, j, g.S[j][j])
			}
		}
		if !g.Overdraft {
			for j, row := range g.S {
				var sum float64
				for _, x := range row {
					sum += x
				}
				if sum > 1+1e-9 {
					t.Fatalf("graph %d row %d sums to %g without overdraft", i, j, sum)
				}
			}
		}
	}
	for s := Complete; s <= Irregular; s++ {
		if shapes[s] == 0 {
			t.Errorf("shape %v never generated in 400 draws", s)
		}
	}
	if overdraft == 0 || plain == 0 {
		t.Errorf("overdraft split degenerate: %d on / %d off", overdraft, plain)
	}
	if withA == 0 {
		t.Errorf("no graph carried absolute agreements in 400 draws")
	}
	if partial == 0 {
		t.Errorf("no graph used a partial transitivity level in 400 draws")
	}
}

// TestModelDeterminism: the same seed must yield the same graph, byte for
// byte — the whole replay story depends on it.
func TestModelDeterminism(t *testing.T) {
	for s := int64(0); s < 20; s++ {
		a := Generate(rand.New(rand.NewSource(s)))
		b := Generate(rand.New(rand.NewSource(s)))
		if a.String() != b.String() {
			t.Fatalf("seed %d generated two different graphs:\n%s\n%s", s, a, b)
		}
	}
}

// TestModelShrinkerKeepsFailing: whatever the shrinker returns must still
// fail the original predicate and respect the size floor.
func TestModelShrinkerKeepsFailing(t *testing.T) {
	g := Generate(rand.New(rand.NewSource(7)))
	// A synthetic predicate: "some availability exceeds 2". The shrinker
	// should strip everything irrelevant while keeping one big V.
	fails := func(c *Graph) bool {
		for _, v := range c.V {
			if v > 2 {
				return true
			}
		}
		return false
	}
	if !fails(g) {
		t.Skip("seed 7 graph does not trip the synthetic predicate")
	}
	shrunk := Shrink(g, fails)
	if !fails(shrunk) {
		t.Fatalf("shrunk graph no longer fails: %s", shrunk)
	}
	if shrunk.N < minPrincipals {
		t.Fatalf("shrunk below the size floor: %d principals", shrunk.N)
	}
	if shrunk.N > g.N {
		t.Fatalf("shrinker grew the graph: %d -> %d", g.N, shrunk.N)
	}
}

// TestModelOracleTransitiveKnownValues pins the recursive oracle to
// hand-computed flow coefficients on the paper's two-hop example shape.
func TestModelOracleTransitiveKnownValues(t *testing.T) {
	// 0 -> 1 (0.5), 1 -> 2 (0.5): T_02 through the chain is 0.25.
	s := [][]float64{
		{0, 0.5, 0},
		{0, 0, 0.5},
		{0, 0, 0},
	}
	tm := RefTransitive(s, 0)
	if tm[0][1] != 0.5 || tm[1][2] != 0.5 {
		t.Fatalf("direct coefficients wrong: %v", tm)
	}
	if tm[0][2] != 0.25 {
		t.Fatalf("T[0][2] = %g, want 0.25 (0.5 × 0.5 chain)", tm[0][2])
	}
	// Level 1 must cut the chain.
	tm1 := RefTransitive(s, 1)
	if tm1[0][2] != 0 {
		t.Fatalf("level-1 T[0][2] = %g, want 0", tm1[0][2])
	}
	// A 2-cycle with shares 1: each principal reaches the other fully, and
	// the cycle-free restriction stops the flow from circulating forever.
	loop := [][]float64{
		{0, 1},
		{1, 0},
	}
	lt := RefTransitive(loop, 0)
	if lt[0][1] != 1 || lt[1][0] != 1 {
		t.Fatalf("loop coefficients wrong: %v", lt)
	}
}
