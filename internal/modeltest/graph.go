// Package modeltest is a deterministic model-based testing harness for
// the enforcement stack. It generates random agreement graphs across the
// paper's taxonomy (complete, sparse, ring/loop, hierarchical; relative
// and absolute agreements; overdraft on and off), checks the optimized
// production code — transitive closure, capacity computation, the LP
// allocator — against slow, obviously-correct oracles implementing the
// paper's §3.1 equations verbatim, and enforces metamorphic properties
// (scaling, conservation, per-source caps, monotonicity, permutation
// invariance). Every failure carries the integer seed that regenerates it
// and a shrunk, minimal failing graph.
//
// The same package hosts a deterministic cluster runner that drives a
// grm.Server and its LRM clients through a seeded interleaving schedule on
// a virtual clock, checking ledger and lease invariants after every step.
//
// Entry points: CheckGraph (one graph), Run (a seeded campaign),
// RunCluster (the protocol-level runner), and cmd/sharingcheck (the CLI
// wrapper CI uses).
package modeltest

import (
	"encoding/json"
	"fmt"
)

// Shape names the agreement-graph families of the paper's taxonomy
// (end of §2; the case study adds the cyclic loop).
type Shape int

const (
	// Complete wires every ordered pair of principals.
	Complete Shape = iota
	// Sparse wires each principal to a few random partners.
	Sparse
	// Ring wires principal i to principal (i+1) mod n only.
	Ring
	// Hierarchical has complete groups bridged by gateway principals.
	Hierarchical
	// Irregular is unstructured: every edge drawn independently.
	Irregular
)

// String returns the lowercase shape name.
func (s Shape) String() string {
	switch s {
	case Complete:
		return "complete"
	case Sparse:
		return "sparse"
	case Ring:
		return "ring"
	case Hierarchical:
		return "hierarchical"
	case Irregular:
		return "irregular"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// Graph is one generated test case: an agreement system in matrix form
// plus the enforcement configuration it should be checked under.
type Graph struct {
	// N is the number of principals.
	N int `json:"n"`
	// S is the relative agreement matrix (zero diagonal, non-negative).
	S [][]float64 `json:"s"`
	// A is the absolute agreement matrix; nil when the case has none.
	A [][]float64 `json:"a,omitempty"`
	// V is the current availability per principal (non-negative).
	V []float64 `json:"v"`
	// Level is the transitivity level m (0 = full closure).
	Level int `json:"level"`
	// Overdraft records whether generation allowed row sums above 1
	// (informational; enforcement caps either way).
	Overdraft bool `json:"overdraft"`
	// Shape records the taxonomy family the graph was drawn from.
	Shape Shape `json:"shape"`
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := &Graph{N: g.N, Level: g.Level, Overdraft: g.Overdraft, Shape: g.Shape}
	out.S = cloneMatrix(g.S)
	out.A = cloneMatrix(g.A)
	out.V = append([]float64(nil), g.V...)
	return out
}

// String renders the graph as compact JSON — the form failure reports
// embed so a case can be eyeballed or replayed.
func (g *Graph) String() string {
	b, err := json.Marshal(g)
	if err != nil {
		return fmt.Sprintf("graph{n=%d, marshal error: %v}", g.N, err)
	}
	return string(b)
}

// maxLevel resolves Level to the effective chain-length bound.
func (g *Graph) maxLevel() int {
	if g.Level <= 0 || g.Level > g.N-1 {
		if g.N <= 1 {
			return 1
		}
		return g.N - 1
	}
	return g.Level
}

func cloneMatrix(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func zeroMatrix(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}
