package modeltest

import (
	"math/rand"
	"testing"
)

// The mutation smoke tests prove the property suite has teeth: each
// deliberately wrong system under test must be caught within a bounded
// number of generated graphs, and each is caught by a different property —
// transitive bugs by the capacity/θ oracles, LP bugs only by θ-minimality,
// core accounting bugs by eq. 5 conservation. DESIGN.md §8 documents the
// mapping.

// mutationBudget is how many graphs each mutant gets before we declare
// the suite blind to it. Kept small so the smoke test stays cheap; in
// practice every mutant dies within the first handful of cases.
const mutationBudget = 60

func requireCaught(t *testing.T, mut Mutation, wantProps map[string]bool) {
	t.Helper()
	rep := Run(Options{Seed: 1, Iters: mutationBudget, Mutation: mut, NoShrink: true})
	if rep.Failure == nil {
		t.Fatalf("mutation %v survived %d generated graphs — the property suite is blind to it", mut, mutationBudget)
	}
	if !wantProps[rep.Failure.Property] {
		t.Fatalf("mutation %v caught by property %q, expected one of %v\n%s",
			mut, rep.Failure.Property, keys(wantProps), rep.Failure.Error())
	}
	t.Logf("mutation %v caught by %q after %d cases", mut, rep.Failure.Property, rep.Cases)
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestModelMutationTransitive: forgetting the cycle-free restriction
// (walk-based coefficients instead of simple paths) inflates capacities
// on any cyclic graph whose coefficients stay below the K cap.
func TestModelMutationTransitive(t *testing.T) {
	requireCaught(t, MutTransitive, map[string]bool{
		"capacity-oracle":  true,
		"plan-equations":   true,
		"scale-invariance": true,
	})
}

// TestModelMutationLP: a feasible-but-suboptimal planner satisfies every
// feasibility equation — only the θ-minimality check can see it.
func TestModelMutationLP(t *testing.T) {
	requireCaught(t, MutLP, map[string]bool{
		"plan-equations": true,
	})
}

// TestModelMutationCore: dropping part of a take breaks Σ takes = amount
// (eq. 5), which CheckAllocation flags directly.
func TestModelMutationCore(t *testing.T) {
	requireCaught(t, MutCore, map[string]bool{
		"plan-equations": true,
	})
}

// TestModelMutationNoneClean: with no mutation the same seeds must pass —
// otherwise the mutants above could be "caught" by a false positive.
func TestModelMutationNoneClean(t *testing.T) {
	rep := Run(Options{Seed: 1, Iters: mutationBudget, Mutation: MutNone})
	if rep.Failure != nil {
		t.Fatalf("clean run failed: %s", rep.Failure.Error())
	}
}

// TestModelShrinkOnRealFailure drives the full Run → shrink path using a
// mutated SUT as a stand-in for a real bug, and checks the shrunk graph
// still fails the same property (what a developer replays first).
func TestModelShrinkOnRealFailure(t *testing.T) {
	rep := Run(Options{Seed: 1, Iters: mutationBudget, Mutation: MutTransitive})
	if rep.Failure == nil {
		t.Fatal("expected the transitive mutant to be caught")
	}
	f := rep.Failure
	if f.Shrunk == nil {
		t.Fatal("failure carries no shrunk graph")
	}
	sf := CheckGraphMutated(f.Shrunk, MutTransitive)
	if sf == nil || sf.Property != f.Property {
		t.Fatalf("shrunk graph does not reproduce property %q: %v", f.Property, sf)
	}
	if f.Shrunk.N > f.Graph.N {
		t.Fatalf("shrinker grew the graph: %d -> %d", f.Graph.N, f.Shrunk.N)
	}
	// The replay contract: regenerating from the reported seed must fail
	// identically.
	g := Generate(rand.New(rand.NewSource(f.Seed)))
	rf := CheckGraphMutated(g, MutTransitive)
	if rf == nil || rf.Property != f.Property {
		t.Fatalf("seed %d does not replay the failure: %v", f.Seed, rf)
	}
}
