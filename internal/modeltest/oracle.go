package modeltest

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/num"
)

// RefTransitive computes the flow-coefficient matrix T^(maxLen) by the
// paper's recursive definition, transcribed as directly as possible: for
// every source, walk every cycle-free chain of at most maxLen agreements,
// multiplying the shares along the way. No iteration-order tricks, no
// bitmasks, no parallelism — this is the oracle the optimized
// transitive.Exact is judged against. maxLen outside [1, n-1] means full
// closure.
func RefTransitive(s [][]float64, maxLen int) [][]float64 {
	n := len(s)
	if maxLen <= 0 || maxLen > n-1 {
		maxLen = n - 1
		if n <= 1 {
			maxLen = 1
		}
	}
	t := zeroMatrix(n)
	var walk func(src, cur int, product float64, visited []bool, depth int)
	walk = func(src, cur int, product float64, visited []bool, depth int) {
		if depth == maxLen {
			return
		}
		for next := 0; next < n; next++ {
			if visited[next] || num.IsZero(s[cur][next]) {
				continue
			}
			p := product * s[cur][next]
			t[src][next] += p
			visited[next] = true
			walk(src, next, p, visited, depth+1)
			visited[next] = false
		}
	}
	visited := make([]bool, n)
	for src := 0; src < n; src++ {
		visited[src] = true
		walk(src, src, 1, visited, 0)
		visited[src] = false
	}
	return t
}

// Oracle holds the reference view of one graph: the recursive flow
// coefficients, their overdraft-capped form K, and brute-force
// implementations of the §3.1/§3.2 equations built on them.
type Oracle struct {
	g *Graph
	// T is the recursive reference T^(m); K is min(T, 1).
	T, K [][]float64
}

// NewOracle computes the reference coefficient matrices for g.
func NewOracle(g *Graph) *Oracle {
	t := RefTransitive(g.S, g.maxLevel())
	k := cloneMatrix(t)
	for i := range k {
		for j := range k[i] {
			if k[i][j] > 1 {
				k[i][j] = 1
			}
		}
	}
	return &Oracle{g: g, T: t, K: k}
}

// SourceCap returns U_ki = min(V_k·K_ki + A_ki, V_k) for k ≠ i — the
// amount of k's availability that i may draw (§3.2).
func (o *Oracle) SourceCap(v []float64, k, i int) float64 {
	u := v[k] * o.K[k][i]
	if o.g.A != nil {
		u += o.g.A[k][i]
	}
	return math.Min(u, v[k])
}

// Capacities computes C_i = V_i + Σ_{k≠i} U_ki by brute force.
func (o *Oracle) Capacities(v []float64) []float64 {
	n := o.g.N
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		c := v[i]
		for k := 0; k < n; k++ {
			if k != i {
				c += o.SourceCap(v, k, i)
			}
		}
		out[i] = c
	}
	return out
}

// requesterCap returns how much of principal i's availability the
// requester may draw: everything when drawing from itself, U_iA otherwise.
func (o *Oracle) requesterCap(v []float64, i, requester int) float64 {
	if i == requester {
		return v[i]
	}
	return o.SourceCap(v, i, requester)
}

// RealizedTheta recomputes the paper's perturbation metric from first
// principles: max over i ≠ requester of C_i(v) − C_i(newV).
func (o *Oracle) RealizedTheta(v, newV []float64, requester int) float64 {
	before := o.Capacities(v)
	after := o.Capacities(newV)
	worst := 0.0
	for i := range before {
		if i == requester {
			continue
		}
		if d := before[i] - after[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// tieTolerance bounds how far the allocator's connectivity tie-break
// (objective term −1e-6·conn_i·V'_i) can push its optimal θ above the pure
// minimum: at most 1e-6 · Σ_i conn_i · V_i, since V' stays within [0, V].
func (o *Oracle) tieTolerance(v []float64) float64 {
	tol := 0.0
	for i := 0; i < o.g.N; i++ {
		var conn float64
		for j := 0; j < o.g.N; j++ {
			if j != i {
				conn += o.K[i][j]
			}
		}
		tol += conn * v[i]
	}
	return 1e-6 * tol
}

// CheckAllocation verifies that an allocation satisfies the paper's
// equations 1–6 against the oracle's coefficients: take/newV consistency,
// per-source caps U_ki, flow conservation Σ takes = amount, availability
// bounds, and that the reported θ matches the brute-force recomputation.
// It returns nil when every equation holds within tolerance.
func (o *Oracle) CheckAllocation(v []float64, requester int, amount float64, a *core.Allocation) error {
	n := o.g.N
	if len(a.Take) != n || len(a.NewV) != n {
		return fmt.Errorf("allocation has %d takes / %d newV for %d principals", len(a.Take), len(a.NewV), n)
	}
	scale := 1 + amount
	for _, x := range v {
		scale = math.Max(scale, 1+x)
	}
	tol := 1e-7 * scale
	var sum float64
	for i := 0; i < n; i++ {
		take, nv := a.Take[i], a.NewV[i]
		if take < -tol {
			return fmt.Errorf("take[%d] = %g is negative", i, take)
		}
		if nv < -tol || nv > v[i]+tol {
			return fmt.Errorf("newV[%d] = %g outside [0, %g]", i, nv, v[i])
		}
		if math.Abs(v[i]-take-nv) > tol {
			return fmt.Errorf("newV[%d] = %g inconsistent with V−take = %g", i, nv, v[i]-take)
		}
		if limit := o.requesterCap(v, i, requester); take > limit+tol {
			return fmt.Errorf("take[%d] = %g exceeds per-source cap U = %g (eq. 4)", i, take, limit)
		}
		sum += take
	}
	if math.Abs(sum-amount) > tol {
		return fmt.Errorf("Σ takes = %g, requested %g (eq. 5 conservation)", sum, amount)
	}
	// θ as reported must match the brute-force recomputation. The
	// allocator computes it from its own (possibly buggy) coefficients, so
	// a mutated transitive layer shows up here even when the LP is fine.
	ref := o.RealizedTheta(v, a.NewV, requester)
	if math.Abs(ref-a.Theta) > 1e-6*scale {
		return fmt.Errorf("reported θ = %g, oracle recomputes %g", a.Theta, ref)
	}
	return nil
}

// PlanTheta solves the allocation problem with an independently
// constructed LP — the substituted formulation written straight from the
// printed equations, built fresh per call (no skeleton cache, no clone
// rebinding, no pooled workspace) and solved with the bounds-aware revised
// simplex rather than the allocator's default tableau — then returns the
// brute-force realized θ of its solution. Within tolerance this is the
// true minimum perturbation for the request.
func (o *Oracle) PlanTheta(v []float64, requester int, amount float64) (float64, error) {
	n := o.g.N
	m := lp.NewModel(lp.Minimize)
	vp := make([]lp.VarID, n)
	for i := 0; i < n; i++ {
		lo := v[i] - o.requesterCap(v, i, requester)
		if lo < 0 {
			lo = 0
		}
		vp[i] = m.AddVar(fmt.Sprintf("V'_%d", i), lo, v[i], 0)
	}
	theta := m.AddVar("theta", 0, lp.Inf, 1)

	var totalV float64
	sumTerms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		totalV += v[i]
		sumTerms[i] = lp.Term{Var: vp[i], Coeff: 1}
	}
	m.AddConstraint("consume", sumTerms, lp.EQ, totalV-amount)

	caps := o.Capacities(v)
	for i := 0; i < n; i++ {
		if i == requester {
			continue
		}
		terms := []lp.Term{{Var: vp[i], Coeff: 1}, {Var: theta, Coeff: 1}}
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			if o.g.A != nil && o.g.A[k][i] > 0 {
				// min(V'_k·K_ki + A_ki, V'_k) linearized through an
				// auxiliary u bounded by both arms; the ≥ row lets the
				// solver push u to the min, so feasibility is exact.
				u := m.AddVar(fmt.Sprintf("u_%d_%d", k, i), 0, lp.Inf, 0)
				m.AddConstraint(fmt.Sprintf("uflow_%d_%d", k, i),
					[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -o.K[k][i]}}, lp.LE, o.g.A[k][i])
				m.AddConstraint(fmt.Sprintf("uown_%d_%d", k, i),
					[]lp.Term{{Var: u, Coeff: 1}, {Var: vp[k], Coeff: -1}}, lp.LE, 0)
				terms = append(terms, lp.Term{Var: u, Coeff: 1})
			} else if !num.IsZero(o.K[k][i]) {
				terms = append(terms, lp.Term{Var: vp[k], Coeff: o.K[k][i]})
			}
		}
		m.AddConstraint(fmt.Sprintf("perturb_%d", i), terms, lp.GE, caps[i])
	}

	sol, err := m.SolveWith(lp.BoundedRevised)
	if err != nil {
		return 0, fmt.Errorf("reference LP: %w", err)
	}
	newV := make([]float64, n)
	for i := 0; i < n; i++ {
		nv := sol.Value(vp[i])
		newV[i] = math.Min(math.Max(nv, 0), v[i])
	}
	return o.RealizedTheta(v, newV, requester), nil
}
