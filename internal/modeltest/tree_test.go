package modeltest

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

var (
	treeSeedFlag  = flag.Int64("tree-seed", 1, "seed for the tree-cluster schedule")
	treeStepsFlag = flag.Int("tree-steps", 50, "operations per tree run")
)

// TestModelTree drives the three-level GRM tree — root, mids, sharded
// leaf clusters — through the seeded schedule. Replay a failure with:
// go test ./internal/modeltest -run TestModelTree -tree-seed <s>
func TestModelTree(t *testing.T) {
	for _, seed := range []int64{*treeSeedFlag, *treeSeedFlag + 1} {
		rep, err := RunTree(TreeOptions{Seed: seed, Steps: *treeStepsFlag, Codec: clusterWire(t)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failure != nil {
			t.Fatalf("%s\ntrail:\n%s", rep.Failure.Error(), tail(rep.Trace, 10))
		}
		if rep.Levels < 3 {
			t.Fatalf("tree ran %d levels, want 3", rep.Levels)
		}
		if rep.Restarts < 1 {
			t.Fatalf("schedule performed no leaf-cluster restart")
		}
		t.Logf("seed %d: %d steps, %d principals, %d LRMs, %d restarts, %.3g still borrowed",
			seed, rep.Steps, rep.Principals, rep.LRMs, rep.Restarts, rep.Borrowed)
	}
}

// TestModelTreeDeterministic: the same seed must produce a byte-identical
// trace across the whole tree — the replay contract at every level,
// leaf-cluster restarts included.
func TestModelTreeDeterministic(t *testing.T) {
	opts := TreeOptions{Seed: *treeSeedFlag, Steps: *treeStepsFlag, Codec: clusterWire(t)}
	a, err := RunTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failure != nil || b.Failure != nil {
		t.Fatalf("runs not clean: %v / %v", a.Failure, b.Failure)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("traces diverge at step %d:\n%s\n%s", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestModelTreeCoversOps sanity-checks the schedule reaches the deep
// transitions: allocations that borrow up the tree, releases, upstream
// refreshes, and a mid-run leaf restart.
func TestModelTreeCoversOps(t *testing.T) {
	rep, err := RunTree(TreeOptions{Seed: *treeSeedFlag, Steps: 120, Codec: clusterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("%s\ntrail:\n%s", rep.Failure.Error(), tail(rep.Trace, 10))
	}
	joined := strings.Join(rep.Trace, "\n")
	for _, want := range []string{"alloc", "deep", "release", "upstream", "restart", "bulkreport"} {
		if !strings.Contains(joined, want) {
			t.Errorf("schedule never performed a %q operation", want)
		}
	}
}

// TestModelTreeScale is the full-size run: 3 GRM levels, 16 leaf shards,
// 100000 leaf principals, and a fleet of 1000 wire LRMs, replayed twice
// to prove the trace is byte-identical at scale. It only runs when
// MODELTEST_SCALE is set (the CI scale job): the full tree takes minutes
// of wall clock on one core.
func TestModelTreeScale(t *testing.T) {
	if os.Getenv("MODELTEST_SCALE") == "" {
		t.Skip("set MODELTEST_SCALE=1 to run the 10^5-principal tree")
	}
	opts := TreeOptions{
		Seed:          *treeSeedFlag,
		Steps:         40,
		Mids:          2,
		LeavesPerMid:  2,
		ShardsPerLeaf: 4,
		Principals:    100_000,
		LRMs:          1000,
		Codec:         clusterWire(t),
	}
	start := time.Now()
	a, err := RunTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failure != nil {
		t.Fatalf("%s\ntrail:\n%s", a.Failure.Error(), tail(a.Trace, 10))
	}
	if a.Principals != 100_000 || a.LRMs != 1000 {
		t.Fatalf("realized %d principals / %d LRMs, want 100000 / 1000", a.Principals, a.LRMs)
	}
	if a.Restarts < 1 {
		t.Fatal("scale schedule performed no leaf-cluster restart")
	}
	t.Logf("scale run: %d steps in %v, %d restarts, %.3g still borrowed",
		a.Steps, time.Since(start), a.Restarts, a.Borrowed)

	b, err := RunTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Failure != nil {
		t.Fatal(b.Failure.Error())
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("scale traces diverge at step %d:\n%s\n%s", i, a.Trace[i], b.Trace[i])
		}
	}
}
