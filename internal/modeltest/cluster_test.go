package modeltest

import (
	"flag"
	"repro/internal/grm"
	"strings"
	"testing"
)

var (
	clusterSeedFlag  = flag.Int64("cluster-seed", 1, "seed for the cluster schedule")
	clusterStepsFlag = flag.Int("cluster-steps", 120, "operations per cluster run")
	clusterWireFlag  = flag.String("cluster-wire", "auto", "wire codec the LRMs speak: auto, binary, or gob")
)

// clusterWire maps -cluster-wire to the codec every cluster test runs
// under, so CI can matrix the whole model suite over both wire formats.
func clusterWire(t *testing.T) grm.WireCodec {
	t.Helper()
	switch *clusterWireFlag {
	case "auto":
		return grm.CodecAuto
	case "binary":
		return grm.CodecBinary
	case "gob":
		return grm.CodecGob
	default:
		t.Fatalf("unknown -cluster-wire %q (want auto, binary, or gob)", *clusterWireFlag)
		return grm.CodecAuto
	}
}

// TestModelCluster drives a real GRM + LRM cluster through the seeded
// schedule and checks the server's books against the independent ledger
// after every operation. Replay a failure with:
// go test ./internal/modeltest -run TestModelCluster -cluster-seed <s>
func TestModelCluster(t *testing.T) {
	for _, seed := range []int64{*clusterSeedFlag, *clusterSeedFlag + 1, *clusterSeedFlag + 2} {
		rep, err := RunCluster(ClusterOptions{Seed: seed, Steps: *clusterStepsFlag, Codec: clusterWire(t)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failure != nil {
			t.Fatalf("%s\ntrail:\n%s", rep.Failure.Error(), tail(rep.Trace, 10))
		}
		t.Logf("seed %d: %d steps clean", seed, rep.Steps)
	}
}

// TestModelClusterDeterministic: the same seed must produce a
// byte-identical trace — the replay contract for protocol-level failures.
func TestModelClusterDeterministic(t *testing.T) {
	a, err := RunCluster(ClusterOptions{Seed: *clusterSeedFlag, Steps: 80, Codec: clusterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(ClusterOptions{Seed: *clusterSeedFlag, Steps: 80, Codec: clusterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Failure != nil || b.Failure != nil {
		t.Fatalf("runs not clean: %v / %v", a.Failure, b.Failure)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("traces diverge at step %d:\n%s\n%s", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestModelClusterCoversOps sanity-checks that the schedule actually
// exercises the interesting transitions: allocations, lease expiry via
// clock advance, and connection kills followed by reconnects.
func TestModelClusterCoversOps(t *testing.T) {
	rep, err := RunCluster(ClusterOptions{Seed: *clusterSeedFlag, Steps: 200, Codec: clusterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Error())
	}
	joined := strings.Join(rep.Trace, "\n")
	for _, want := range []string{"alloc ", "kill ", "advance ", "report ", "restart "} {
		if !strings.Contains(joined, want) {
			t.Errorf("200-step schedule never exercised %q", strings.TrimSpace(want))
		}
	}
	if !strings.Contains(joined, "reaped=1") && !strings.Contains(joined, "reaped=2") {
		t.Errorf("no clock advance ever reaped a lease; expiry path untested")
	}
}

// TestModelClusterRestart pins the crash-recovery path: with the fixed
// seed the schedule kills and recovers the GRM mid-workload (with leases
// outstanding), the recovered server's books must match the ledger after
// every subsequent operation (RunCluster audits that), and the whole
// trace — restarts included — must replay byte-for-byte.
func TestModelClusterRestart(t *testing.T) {
	const steps = 200
	a, err := RunCluster(ClusterOptions{Seed: *clusterSeedFlag, Steps: steps, Codec: clusterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Failure != nil {
		t.Fatalf("%s\ntrail:\n%s", a.Failure.Error(), tail(a.Trace, 10))
	}
	restarts, withLeases := 0, 0
	for _, line := range a.Trace {
		if !strings.Contains(line, "restart ") {
			continue
		}
		restarts++
		if !strings.Contains(line, "leases=0") {
			withLeases++
		}
	}
	if restarts == 0 {
		t.Fatalf("%d-step schedule never restarted the GRM", steps)
	}
	if withLeases == 0 {
		t.Errorf("no restart happened with leases outstanding; recovery of live leases untested")
	}

	b, err := RunCluster(ClusterOptions{Seed: *clusterSeedFlag, Steps: steps, Codec: clusterWire(t)})
	if err != nil {
		t.Fatal(err)
	}
	if b.Failure != nil {
		t.Fatal(b.Failure.Error())
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("restart traces diverge at step %d:\n%s\n%s", i, a.Trace[i], b.Trace[i])
		}
	}
}

func tail(lines []string, n int) string {
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// TestModelClusterCodecEquivalence is the wire-format correctness
// contract: the same seeded schedule — restarts, kills, and recovery
// included — must replay byte-identical whether the LRMs speak the
// legacy gob stream or the pipelined binary codec. 200 steps covers the
// restart-grm recovery path (TestModelClusterRestart pins that the
// fixed seed restarts with leases outstanding).
func TestModelClusterCodecEquivalence(t *testing.T) {
	const steps = 200
	for _, seed := range []int64{*clusterSeedFlag, *clusterSeedFlag + 1} {
		gobRep, err := RunCluster(ClusterOptions{Seed: seed, Steps: steps, Codec: grm.CodecGob})
		if err != nil {
			t.Fatalf("seed %d gob: %v", seed, err)
		}
		if gobRep.Failure != nil {
			t.Fatalf("seed %d gob: %s\ntrail:\n%s", seed, gobRep.Failure.Error(), tail(gobRep.Trace, 10))
		}
		binRep, err := RunCluster(ClusterOptions{Seed: seed, Steps: steps, Codec: grm.CodecBinary})
		if err != nil {
			t.Fatalf("seed %d binary: %v", seed, err)
		}
		if binRep.Failure != nil {
			t.Fatalf("seed %d binary: %s\ntrail:\n%s", seed, binRep.Failure.Error(), tail(binRep.Trace, 10))
		}
		if len(gobRep.Trace) != len(binRep.Trace) {
			t.Fatalf("seed %d: trace lengths differ: gob %d vs binary %d", seed, len(gobRep.Trace), len(binRep.Trace))
		}
		for i := range gobRep.Trace {
			if gobRep.Trace[i] != binRep.Trace[i] {
				t.Fatalf("seed %d: codec traces diverge at step %d:\ngob:    %s\nbinary: %s",
					seed, i, gobRep.Trace[i], binRep.Trace[i])
			}
		}
	}
}
