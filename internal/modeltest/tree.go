package modeltest

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net"
	"strings"

	"repro/internal/core"
	"repro/internal/grm"
	"repro/internal/store"
)

// TreeOptions configures one deterministic tree-cluster run: a root GRM,
// a layer of mid-level GRMs federated under it, and sharded leaf
// clusters federated under the mids — three GRM levels end to end. Leaf
// principals arrive two ways: a bulk population registered in-process
// through the shard router (so the run scales to 10^5 principals without
// 10^5 sockets) and a fleet of real LRM clients on the wire. A seeded
// schedule then mixes reports, allocations that borrow up the tree,
// releases that repay down it, upstream reports, and whole-leaf-cluster
// restarts recovering from the per-shard write-ahead logs.
type TreeOptions struct {
	// Seed drives everything random: capacities, the agreement blocks,
	// and the operation schedule.
	Seed int64
	// Steps is how many schedule operations to execute.
	Steps int
	// Mids is the number of mid-level GRMs under the root.
	Mids int
	// LeavesPerMid is the number of sharded leaf clusters under each mid.
	LeavesPerMid int
	// ShardsPerLeaf is the shard count of each leaf cluster.
	ShardsPerLeaf int
	// Principals is the total leaf-level principal population, the LRM
	// fleet included; the remainder is bulk-registered in-process.
	Principals int
	// LRMs is how many real wire clients dial the leaf clusters.
	LRMs int
	// Codec is the wire codec the LRM fleet speaks. The schedule and its
	// trace are codec-independent.
	Codec grm.WireCodec
}

func (o *TreeOptions) defaults() {
	if o.Steps <= 0 {
		o.Steps = 50
	}
	if o.Mids <= 0 {
		o.Mids = 2
	}
	if o.LeavesPerMid <= 0 {
		o.LeavesPerMid = 1
	}
	if o.ShardsPerLeaf <= 0 {
		o.ShardsPerLeaf = 2
	}
	if o.Principals <= 0 {
		o.Principals = 300
	}
	if o.LRMs <= 0 {
		o.LRMs = 12
	}
	if o.LRMs > o.Principals {
		o.LRMs = o.Principals
	}
}

// TreeFailure pinpoints an invariant violation in a tree run.
type TreeFailure struct {
	Seed int64  `json:"seed"`
	Step int    `json:"step"`
	Op   string `json:"op"`
	Msg  string `json:"msg"`
}

// Error formats the failure with its replay seed.
func (f *TreeFailure) Error() string {
	return fmt.Sprintf("modeltest: tree step %d (%s) violated an invariant (replay: -tree-seed %d): %s",
		f.Step, f.Op, f.Seed, f.Msg)
}

// TreeReport is the outcome of RunTree.
type TreeReport struct {
	// Steps is how many operations ran (the failing one included).
	Steps int
	// Levels is the GRM tree depth (root, mids, leaves).
	Levels int
	// Principals is the realized leaf-level principal count.
	Principals int
	// LRMs is the realized wire-client count.
	LRMs int
	// Restarts counts the leaf-cluster restarts the schedule performed.
	Restarts int
	// Borrowed reports the leaves' outstanding federation borrow total at
	// the end of the run.
	Borrowed float64
	// Trace records one line per operation: the op, its outcome, and an
	// FNV-1a digest of every level's books afterwards. Two runs with the
	// same options must produce byte-identical traces.
	Trace []string
	// Failure is the first invariant violation, nil when the run is clean.
	Failure *TreeFailure
}

// treeLeaf is one sharded leaf cluster and its durable medium.
type treeLeaf struct {
	name    string
	midAddr string
	cluster *grm.Sharded
	logs    []store.Log
	addr    string
	// prefixes[s] is a subtree prefix the router maps to shard s, so the
	// harness can place principals and keep agreements intra-shard.
	prefixes []string
	// bulk holds the in-process principals' global ids, grouped by shard
	// prefix so agreement blocks stay on one shard.
	bulk [][]int
}

// treeLRM is one wire client of a leaf cluster.
type treeLRM struct {
	lrm      *grm.LRM
	leaf     int
	capacity float64
}

// treeLease is one outstanding allocation made by the LRM fleet.
type treeLease struct {
	leaf  int
	lrm   int
	token int
}

// treeConfig is the allocator configuration every server in the tree
// runs: ComponentLP keeps each plan's LP restricted to the requester's
// agreement component, which is what makes allocation tractable at the
// scale test's 10^5 principals per run (the full substituted LP carries
// all n+1 variables and solves in seconds per request at that size).
var treeConfig = core.Config{ComponentLP: true}

// RunTree executes one seeded tree-cluster schedule and checks the
// cross-level invariants after every operation: availability stays
// non-negative everywhere, allocation takes add up, lease tokens are
// never reused, and a restarted leaf cluster recovers its books
// bit-identically from its per-shard logs before serving again.
func RunTree(opts TreeOptions) (*TreeReport, error) {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &TreeReport{Levels: 3}

	// Root level. No lease TTL anywhere: the tree run keeps every server's
	// background reaper off, so the only transitions are the schedule's.
	root := grm.NewServer(treeConfig, nil)
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("modeltest: tree root listen: %w", err)
	}
	go root.Serve(rl)
	defer root.Close()

	// Mid level, each mid an LRM of the root.
	mids := make([]*grm.Server, opts.Mids)
	midAddrs := make([]string, opts.Mids)
	for m := range mids {
		mid := grm.NewServer(treeConfig, nil)
		ml, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("modeltest: tree mid %d listen: %w", m, err)
		}
		go mid.Serve(ml)
		defer mid.Close()
		if err := mid.AttachParent(rl.Addr().String(), fmt.Sprintf("mid%d", m)); err != nil {
			return nil, fmt.Errorf("modeltest: tree mid %d attach: %w", m, err)
		}
		mids[m] = mid
		midAddrs[m] = ml.Addr().String()
	}

	// Leaf level: sharded clusters, each an LRM of its mid, each shard
	// journaling into its own write-ahead log.
	newCluster := func(lf *treeLeaf, recover bool) error {
		c := grm.NewSharded(opts.ShardsPerLeaf, treeConfig, nil)
		if recover {
			if err := c.RecoverShards(lf.logs); err != nil {
				return fmt.Errorf("recover %s: %w", lf.name, err)
			}
		} else if err := c.SetLogs(lf.logs); err != nil {
			return err
		}
		lf.cluster = c
		return nil
	}
	startCluster := func(lf *treeLeaf) error {
		var l net.Listener
		var err error
		if lf.addr == "" {
			l, err = net.Listen("tcp", "127.0.0.1:0")
		} else {
			// A restart reclaims the cluster's old address so the LRM
			// fleet's transparent reconnects find it.
			l, err = net.Listen("tcp", lf.addr)
		}
		if err != nil {
			return fmt.Errorf("listen %s: %w", lf.name, err)
		}
		lf.addr = l.Addr().String()
		go lf.cluster.Serve(l)
		if err := lf.cluster.AttachParent(lf.midAddr, lf.name); err != nil {
			return fmt.Errorf("attach %s: %w", lf.name, err)
		}
		return nil
	}
	nleaves := opts.Mids * opts.LeavesPerMid
	leaves := make([]*treeLeaf, nleaves)
	for i := range leaves {
		mid := i / opts.LeavesPerMid
		lf := &treeLeaf{
			name:    fmt.Sprintf("leaf%d", i),
			midAddr: midAddrs[mid],
			logs:    make([]store.Log, opts.ShardsPerLeaf),
		}
		for s := range lf.logs {
			lf.logs[s] = store.NewMemLog()
		}
		if err := newCluster(lf, false); err != nil {
			return nil, fmt.Errorf("modeltest: tree: %w", err)
		}
		defer func() { lf.cluster.Close() }()
		// Probe subtree prefixes until every shard has one.
		lf.prefixes = make([]string, opts.ShardsPerLeaf)
		lf.bulk = make([][]int, opts.ShardsPerLeaf)
		for found, p := 0, 0; found < opts.ShardsPerLeaf; p++ {
			if p > 100_000 {
				return nil, fmt.Errorf("modeltest: tree: no prefix for every shard of %s", lf.name)
			}
			name := fmt.Sprintf("b%d", p)
			if s := lf.cluster.ShardOf(name + "/probe"); lf.prefixes[s] == "" {
				lf.prefixes[s] = name
				found++
			}
		}
		if err := startCluster(lf); err != nil {
			return nil, fmt.Errorf("modeltest: tree: %w", err)
		}
		leaves[i] = lf
	}

	// Bulk population, registered in-process through each router. The
	// shard prefix rotates per principal so every shard fills evenly.
	nbulk := opts.Principals - opts.LRMs
	for k := 0; k < nbulk; k++ {
		lf := leaves[k%nleaves]
		shard := (k / nleaves) % opts.ShardsPerLeaf
		name := fmt.Sprintf("%s/p%d", lf.prefixes[shard], k)
		resp := lf.cluster.Handle(&grm.Request{Register: &grm.RegisterRequest{
			Name:     name,
			Capacity: 1 + grid(rng.Float64()*9),
		}})
		if resp.Err != "" {
			return nil, fmt.Errorf("modeltest: tree register %s: %s", name, resp.Err)
		}
		lf.bulk[shard] = append(lf.bulk[shard], resp.Register.Principal)
		rep.Principals++
	}
	// Agreement blocks: consecutive same-shard principals form blocks of
	// up to eight, chained by relative agreements with an absolute edge
	// closing each block — sparse rows, small closure components, and
	// every edge intra-shard by construction.
	const blockSize = 8
	for _, lf := range leaves {
		for _, ids := range lf.bulk {
			for start := 0; start < len(ids); start += blockSize {
				end := start + blockSize
				if end > len(ids) {
					end = len(ids)
				}
				for j := start; j+1 < end; j++ {
					resp := lf.cluster.Handle(&grm.Request{Share: &grm.ShareRequest{
						From: ids[j], To: ids[j+1], Fraction: grid(0.1 + rng.Float64()*0.3),
					}})
					if resp.Err != "" {
						return nil, fmt.Errorf("modeltest: tree share: %s", resp.Err)
					}
				}
				if end-start >= 2 {
					resp := lf.cluster.Handle(&grm.Request{Share: &grm.ShareRequest{
						From: ids[end-1], To: ids[start], Quantity: grid(1 + rng.Float64()*3),
					}})
					if resp.Err != "" {
						return nil, fmt.Errorf("modeltest: tree share: %s", resp.Err)
					}
				}
			}
		}
	}

	// The LRM fleet, spread round-robin over leaves and shard prefixes.
	lrms := make([]*treeLRM, opts.LRMs)
	cfg := grm.DefaultDialConfig()
	cfg.Codec = opts.Codec
	for i := range lrms {
		leaf := i % nleaves
		lf := leaves[leaf]
		prefix := lf.prefixes[(i/nleaves)%opts.ShardsPerLeaf]
		capacity := 1 + grid(rng.Float64()*9)
		lrm, err := grm.DialWithConfig(lf.addr, fmt.Sprintf("%s/lrm%d", prefix, i), capacity, cfg)
		if err != nil {
			return nil, fmt.Errorf("modeltest: tree dial lrm%d: %w", i, err)
		}
		defer lrm.Close()
		lrms[i] = &treeLRM{lrm: lrm, leaf: leaf, capacity: capacity}
		rep.Principals++
		rep.LRMs++
	}

	// Seed the upper levels' books with the leaves' aggregates.
	for _, lf := range leaves {
		if err := lf.cluster.ReportUpstream(); err != nil {
			return nil, fmt.Errorf("modeltest: tree %s report upstream: %w", lf.name, err)
		}
	}
	for m, mid := range mids {
		if err := mid.ReportUpstream(); err != nil {
			return nil, fmt.Errorf("modeltest: tree mid %d report upstream: %w", m, err)
		}
	}

	const tol = 1e-6
	fail := func(step int, op, format string, args ...any) *TreeReport {
		rep.Steps = step + 1
		rep.Failure = &TreeFailure{Seed: opts.Seed, Step: step, Op: op, Msg: fmt.Sprintf(format, args...)}
		return rep
	}

	// booksDigest folds every level's books into one FNV-1a digest —
	// availability and computed capacities at each leaf (through the
	// routers' merged caps) and at each upper server. It also enforces
	// the non-negativity invariants while it walks.
	var buf [8]byte
	writeF := func(h interface{ Write([]byte) (int, error) }, x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	booksDigest := func() (uint64, error) {
		h := fnv.New64a()
		for _, lf := range leaves {
			resp := lf.cluster.Handle(&grm.Request{Caps: &grm.CapsRequest{}})
			if resp.Err != "" {
				return 0, fmt.Errorf("%s caps: %s", lf.name, resp.Err)
			}
			for i, a := range resp.Caps.Available {
				c := resp.Caps.Capacities[i]
				if a < -tol {
					return 0, fmt.Errorf("%s principal %d available %g negative", lf.name, i, a)
				}
				if c < a-tol {
					return 0, fmt.Errorf("%s principal %d capacity %g below available %g", lf.name, i, c, a)
				}
				writeF(h, a)
				writeF(h, c)
			}
		}
		for _, srv := range append([]*grm.Server{root}, mids...) {
			st, err := srv.Status()
			if err != nil {
				return 0, fmt.Errorf("status: %w", err)
			}
			for _, ps := range st.Principals {
				if ps.Available < -tol {
					return 0, fmt.Errorf("upper principal %q available %g negative", ps.Name, ps.Available)
				}
				writeF(h, ps.Available)
				writeF(h, ps.Capacity)
			}
		}
		return h.Sum64(), nil
	}

	// leafDigest folds one leaf cluster's merged status — books, leases,
	// agreements, and borrow balances — for the restart recovery check.
	// Borrow liveness flags are excluded: recovery cannot resurrect the
	// parent links themselves, only the balances.
	leafDigest := func(lf *treeLeaf) (uint64, error) {
		st, err := lf.cluster.Status()
		if err != nil {
			return 0, err
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "leases=%d agreements=%d\n", st.Leases, st.Agreements)
		for _, ps := range st.Principals {
			fmt.Fprintf(h, "p%d %s ", ps.Principal, ps.Name)
			writeF(h, ps.Available)
			writeF(h, ps.Reported)
			writeF(h, ps.Capacity)
		}
		for _, b := range st.Federation.Borrows {
			fmt.Fprintf(h, "borrow %d ", b.ParentLease)
			writeF(h, b.Amount)
		}
		return h.Sum64(), nil
	}

	var leases []treeLease
	seenTokens := make([]map[int]bool, nleaves)
	for i := range seenTokens {
		seenTokens[i] = map[int]bool{}
	}

	restartLeaf := func(step int, li int) (string, *TreeReport) {
		lf := leaves[li]
		before, err := leafDigest(lf)
		if err != nil {
			return "", fail(step, "restart", "pre-restart digest %s: %v", lf.name, err)
		}
		if err := lf.cluster.Close(); err != nil {
			return "", fail(step, "restart", "close %s: %v", lf.name, err)
		}
		if err := newCluster(lf, true); err != nil {
			return "", fail(step, "restart", "%v", err)
		}
		after, err := leafDigest(lf)
		if err != nil {
			return "", fail(step, "restart", "post-recovery digest %s: %v", lf.name, err)
		}
		if after != before {
			return "", fail(step, "restart", "%s recovered books digest %016x, want %016x", lf.name, after, before)
		}
		if err := startCluster(lf); err != nil {
			return "", fail(step, "restart", "%v", err)
		}
		rep.Restarts++
		return fmt.Sprintf("restart %s digest=%016x", lf.name, before), nil
	}

	for step := 0; step < opts.Steps; step++ {
		var line string
		op := rng.Intn(12)
		if step == opts.Steps/2 {
			// One restart is pinned to the schedule's midpoint so every
			// seed proves per-shard WAL recovery mid-run.
			op = 11
		}
		switch op {
		case 0, 1, 2: // report via a wire client
			i := rng.Intn(len(lrms))
			x := grid(rng.Float64() * lrms[i].capacity * 1.2)
			if err := lrms[i].lrm.Report(x); err != nil {
				return fail(step, "report", "lrm%d Report(%g): %v", i, x, err), nil
			}
			line = fmt.Sprintf("report lrm%d %g", i, x)

		case 3, 4, 5, 6: // allocate via a wire client; oversized asks borrow up the tree
			i := rng.Intn(len(lrms))
			tl := lrms[i]
			amount := grid(0.5 + rng.Float64()*tl.capacity)
			kind := "local"
			if rng.Intn(3) == 0 {
				// Past the whole cluster's worth: the leaf's deficit
				// borrows from its mid, which may borrow from the root.
				amount = grid(tl.capacity * (2 + rng.Float64()*2))
				kind = "deep"
			}
			reply, err := tl.lrm.Allocate(amount)
			if err != nil {
				if strings.Contains(err.Error(), "insufficient") || strings.Contains(err.Error(), "short of") {
					// Legitimate refusal: even the root ran dry. The books
					// must be untouched (the digest below verifies).
					line = fmt.Sprintf("alloc lrm%d %g refused", i, amount)
					break
				}
				return fail(step, "alloc", "lrm%d Allocate(%g): %v", i, amount, err), nil
			}
			var sum float64
			for gp, take := range reply.Takes {
				if take < -tol {
					return fail(step, "alloc", "lrm%d take[%d] = %g negative", i, gp, take), nil
				}
				sum += take
			}
			if math.Abs(sum-amount) > tol {
				return fail(step, "alloc", "lrm%d Σ takes = %g, requested %g", i, sum, amount), nil
			}
			if seenTokens[tl.leaf][reply.Lease] {
				return fail(step, "alloc", "leaf%d lease token %d reused", tl.leaf, reply.Lease), nil
			}
			seenTokens[tl.leaf][reply.Lease] = true
			leases = append(leases, treeLease{leaf: tl.leaf, lrm: i, token: reply.Lease})
			line = fmt.Sprintf("alloc lrm%d %g %s lease=%d theta=%.9g", i, amount, kind, reply.Lease, reply.Theta)

		case 7: // release an outstanding lease (repays any borrow behind it)
			if len(leases) == 0 {
				line = "release skipped (no leases)"
				break
			}
			j := rng.Intn(len(leases))
			le := leases[j]
			if err := lrms[le.lrm].lrm.Release(le.token); err != nil {
				return fail(step, "release", "lrm%d Release(%d): %v", le.lrm, le.token, err), nil
			}
			leases = append(leases[:j], leases[j+1:]...)
			line = fmt.Sprintf("release lrm%d lease=%d", le.lrm, le.token)

		case 8: // in-process report for a bulk principal
			lf := leaves[rng.Intn(nleaves)]
			ids := lf.bulk[rng.Intn(opts.ShardsPerLeaf)]
			if len(ids) == 0 {
				line = "bulkreport skipped (no bulk principals)"
				break
			}
			id := ids[rng.Intn(len(ids))]
			x := grid(rng.Float64() * 10)
			resp := lf.cluster.Handle(&grm.Request{Report: &grm.ReportRequest{Principal: id, Available: x}})
			if resp.Err != "" {
				return fail(step, "bulkreport", "%s p%d: %s", lf.name, id, resp.Err), nil
			}
			line = fmt.Sprintf("bulkreport %s p%d %g", lf.name, id, x)

		case 9, 10: // refresh the upper levels' aggregate views
			li := rng.Intn(nleaves)
			lf := leaves[li]
			if err := lf.cluster.ReportUpstream(); err != nil {
				return fail(step, "upstream", "%s: %v", lf.name, err), nil
			}
			mid := li / opts.LeavesPerMid
			if err := mids[mid].ReportUpstream(); err != nil {
				return fail(step, "upstream", "mid%d: %v", mid, err), nil
			}
			line = fmt.Sprintf("upstream %s mid%d", lf.name, mid)

		case 11: // restart a leaf cluster, recovering its per-shard WALs
			li := rng.Intn(nleaves)
			var failed *TreeReport
			line, failed = restartLeaf(step, li)
			if failed != nil {
				return failed, nil
			}
		}

		digest, err := booksDigest()
		if err != nil {
			return fail(step, "invariant", "after %q: %v", line, err), nil
		}
		rep.Trace = append(rep.Trace, fmt.Sprintf("%4d %s | h=%016x", step, line, digest))
		rep.Steps = step + 1
	}

	// The leaves' closing borrow balances, for the report.
	for _, lf := range leaves {
		st, err := lf.cluster.Status()
		if err != nil {
			return nil, fmt.Errorf("modeltest: tree closing status: %w", err)
		}
		rep.Borrowed += st.Federation.TotalBorrowed
	}
	return rep, nil
}
