// Package num centralizes floating-point comparison policy for the
// numeric layers (lp, transitive, core, agreement). Raw ==/!= on floats
// is banned there by the sharingvet floateq analyzer; comparisons must go
// through these helpers so every call site states whether it wants exact
// (bit-level, e.g. sparsity guards) or tolerant (epsilon) semantics.
package num

import "math"

// Eps is the default relative tolerance for Eq/Leq/Geq. The LP layer
// resolves pivots around 1e-9; values closer than that are numerically
// indistinguishable to the solver.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps, scaled by the larger
// magnitude (relative for large values, absolute near zero).
func Eq(a, b float64) bool {
	if a == b { //lint:ignore sharingvet/floateq the helper the analyzer points to
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= Eps*scale
}

// IsZero reports whether x is exactly zero. It exists for sparsity
// guards — "skip this matrix entry / objective coefficient" — where the
// test is structural (was anything ever stored here?) and an epsilon
// would silently drop small but real values. Use Eq(x, 0) when you mean
// "numerically negligible".
func IsZero(x float64) bool {
	return x == 0 //lint:ignore sharingvet/floateq exact zero is the documented contract
}

// SolveTol is the documented tolerance for comparing two optimal LP
// solutions obtained along different pivot paths — in particular a
// warm-started lp.ResolveFrom against a cold solve of the same model.
// Both paths land within the solver's feasibility tolerance (1e-7) of
// the same optimum, but the basic solutions they report can differ by
// accumulated pivot round-off on either side; 1e-6 relative absorbs
// that while still catching genuinely divergent answers. Incremental
// results that must be bit-identical (closure deltas, COW allocator
// state) are pinned with exact comparison instead — this constant is
// only for solver outputs.
const SolveTol = 1e-6

// EqSolve reports whether two solver outputs (objective values, solution
// coordinates, allocation takes) are equal within SolveTol, scaled by the
// larger magnitude. This is the comparison the incremental-equivalence
// properties use for warm-started solves.
func EqSolve(a, b float64) bool {
	if a == b { //lint:ignore sharingvet/floateq the helper the analyzer points to
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= SolveTol*scale
}

// Leq reports a <= b within Eps tolerance (a may exceed b by Eps*scale).
func Leq(a, b float64) bool {
	if a <= b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return a-b <= Eps*scale
}

// Geq reports a >= b within Eps tolerance.
func Geq(a, b float64) bool { return Leq(b, a) }
