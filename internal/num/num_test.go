package num

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1e12, 1e12 * (1 + 1e-12), true}, // relative scaling
		{1e12, 1e12 + 1, true},
		{0, 1e-12, true}, // absolute near zero
		{0, 1e-6, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero should accept both signed zeros")
	}
	if IsZero(1e-300) {
		t.Error("IsZero must be exact: 1e-300 is not zero")
	}
}

func TestLeqGeq(t *testing.T) {
	if !Leq(1, 2) || !Leq(2, 2) || !Leq(2+1e-12, 2) {
		t.Error("Leq tolerance cases failed")
	}
	if Leq(2+1e-6, 2) {
		t.Error("Leq should reject differences above Eps")
	}
	if !Geq(2, 1) || !Geq(2-1e-12, 2) || Geq(2-1e-6, 2) {
		t.Error("Geq cases failed")
	}
}
